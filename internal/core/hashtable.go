package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/exec"
	"pimassembler/internal/kmer"
	"pimassembler/internal/mapping"
	"pimassembler/internal/subarray"
)

// ErrTableFull reports that a sub-array's k-mer region has no free slot left
// on the probe path.
var ErrTableFull = errors.New("core: sub-array k-mer region full")

// OpProfile selects how the hash table's row comparisons execute.
type OpProfile int

const (
	// OpsNative uses the paper's single-cycle two-row XNOR (3 command
	// slots staged).
	OpsNative OpProfile = iota
	// OpsMajorityEmulated uses the Ambit-style majority/NOT composition
	// (18 command slots) — the baseline-emulation mode for end-to-end
	// functional cost comparison.
	OpsMajorityEmulated
)

// HashTable is the PIM-mapped k-mer hash table of Fig. 6: each k-mer lives
// in one row of its home sub-array's k-mer region, its frequency counter in
// the value region (bit-planar, one lane per slot), and queries stage
// through the temp region. Lookups are in-memory row comparisons
// (PIM_XNOR + DPU match), counter updates are in-memory ripple increments
// (PIM_Add), and inserts are RowClones from the temp row (MEM_insert).
//
// The controller tracks slot occupancy — hardware keeps that in the Ctrl's
// SRAM bitmap; the k-mer *values* live only in DRAM rows and every
// comparison really reads them from the functional sub-array.
type HashTable struct {
	platform *Platform
	k        int
	base     int // first sub-array index of the table's region
	ops      OpProfile
	place    mapping.HashPlacement
	occupied map[int][]bool // sub-array (region-relative) -> slot occupancy
	distinct int64          // atomic: parallel stage-1 workers insert concurrently
	probes   int64          // atomic: cumulative Add slot visits (see ProbeOps)
}

// SetOpProfile switches the comparison implementation (default OpsNative).
// Call before the first Add; mixing profiles mid-run is allowed but makes
// cost comparisons meaningless.
func (t *HashTable) SetOpProfile(p OpProfile) { t.ops = p }

// compare runs the profile's XNOR into dst.
func (t *HashTable) compare(s *subarray.Subarray, queryRow, entryRow, dst int) {
	if t.ops == OpsMajorityEmulated {
		s.XNOREmulatedTRA(queryRow, entryRow, dst)
		return
	}
	s.XNOR(queryRow, entryRow, dst)
}

// NewHashTable creates a PIM hash table over sub-arrays [0, nSubarrays) of
// the platform (use a small number for functional runs; the analytical
// model scales to the full geometry).
func NewHashTable(p *Platform, k, nSubarrays int) *HashTable {
	return NewHashTableAt(p, k, 0, nSubarrays)
}

// NewHashTableAt places the table's region at sub-arrays
// [base, base+nSubarrays), letting it coexist with a SequenceBank or graph
// blocks on the same platform.
func NewHashTableAt(p *Platform, k, base, nSubarrays int) *HashTable {
	if k <= 0 || k > kmer.MaxK {
		panic(fmt.Sprintf("core: k=%d outside [1,%d]", k, kmer.MaxK))
	}
	if 2*k > p.layout.Cols {
		panic(fmt.Sprintf("core: %d-mer does not fit a %d-bit row", k, p.layout.Cols))
	}
	if base < 0 || nSubarrays <= 0 || base+nSubarrays > p.geom.TotalSubarrays() {
		panic(fmt.Sprintf("core: table region [%d,%d) outside the geometry", base, base+nSubarrays))
	}
	return &HashTable{
		platform: p,
		k:        k,
		base:     base,
		place:    mapping.NewHashPlacement(nSubarrays, p.layout),
		occupied: make(map[int][]bool),
	}
}

// K returns the k-mer length.
func (t *HashTable) K() int { return t.k }

// Len returns the number of distinct k-mers stored.
func (t *HashTable) Len() int { return int(atomic.LoadInt64(&t.distinct)) }

// ProbeOps returns the cumulative number of slot visits Add has performed —
// the functional analogue of kmer.CountTable.ProbeOps, feeding the
// operation-count extraction of the analytical models.
func (t *HashTable) ProbeOps() int64 { return atomic.LoadInt64(&t.probes) }

// Subarrays returns the size of the table's sub-array region.
func (t *HashTable) Subarrays() int { return t.place.Subarrays }

// Home returns the region-relative sub-array index km is placed in — the
// shard key parallel stage-1 drivers partition the k-mer stream by. All of
// one k-mer's probes, inserts, and counter updates stay inside this
// sub-array, so two k-mers with different homes never share state.
func (t *HashTable) Home(km kmer.Kmer) int {
	subIdx, _ := t.place.Place(km)
	return subIdx
}

// GlobalSubarray converts a region-relative sub-array index (a Home value)
// into the platform-global index, e.g. for bank grouping.
func (t *HashTable) GlobalSubarray(subIdx int) int { return t.base + subIdx }

// Materialize eagerly materialises every sub-array and occupancy bitmap of
// the table's region. Parallel drivers must call it before spawning
// workers: Platform.Subarray and the bitmap map are mutated on first touch
// and are not safe for concurrent initialisation.
func (t *HashTable) Materialize() {
	for i := 0; i < t.place.Subarrays; i++ {
		t.platform.Subarray(t.base + i)
		t.bitmap(i)
	}
}

// encodeRow packs a k-mer into a full row vector (2k bits of payload,
// zero-padded) so whole-row XNOR comparison is exact.
func (t *HashTable) encodeRow(km kmer.Kmer) *bitvec.Vector {
	v := bitvec.New(t.platform.layout.Cols)
	v.SetUint64(0, 2*t.k, uint64(km))
	return v
}

// decodeRow unpacks a k-mer from a stored row.
func (t *HashTable) decodeRow(v *bitvec.Vector) kmer.Kmer {
	return kmer.Kmer(v.Uint64(0, 2*t.k))
}

func (t *HashTable) bitmap(sub int) []bool {
	bm, ok := t.occupied[sub]
	if !ok {
		bm = make([]bool, t.platform.layout.KmerRows)
		t.occupied[sub] = bm
	}
	return bm
}

// Add runs one iteration of the reconstructed Hashmap procedure (Fig. 5b):
// stage the query in the temp region, probe stored rows with PIM_XNOR until
// a match or a free slot, then either PIM_Add the frequency or MEM_insert
// the new entry with frequency 1. It reports whether the k-mer was newly
// inserted.
func (t *HashTable) Add(km kmer.Kmer) (inserted bool, err error) {
	lay := t.platform.layout
	subIdx, home := t.place.Place(km)
	s := t.platform.Subarray(t.base + subIdx)
	s.SetStage(exec.StageHashmap)
	bm := t.bitmap(subIdx)

	tempQuery := lay.TempBase()      // temp row 0: the staged query
	tempOneHot := lay.TempBase() + 1 // temp row 1: one-hot increment lane
	xnorOut := lay.ReservedBase()    // reserved row 0: comparison result

	s.Write(tempQuery, t.encodeRow(km))

	for probe := 0; probe < lay.KmerRows; probe++ {
		atomic.AddInt64(&t.probes, 1)
		slot := (home + probe) % lay.KmerRows
		row := lay.KmerRow(slot)
		if !bm[slot] {
			// MEM_insert(k_mer, 1): clone the staged query into the free
			// row and increment the zeroed counter lane to 1.
			s.RowClone(tempQuery, row)
			bm[slot] = true
			atomic.AddInt64(&t.distinct, 1)
			t.incrementCounter(s, slot, tempOneHot)
			return true, nil
		}
		// PIM_XNOR(k_mer, Hmap): whole-row compare + DPU AND reduction.
		t.compare(s, tempQuery, row, xnorOut)
		if s.MatchAllOnes(xnorOut) {
			// New_freq = PIM_Add(k_mer, 1); MEM_insert(k_mer, New_freq):
			// the in-memory increment writes the updated counter bits back
			// without the value ever leaving the sub-array.
			t.incrementCounter(s, slot, tempOneHot)
			return false, nil
		}
	}
	return false, fmt.Errorf("%w: sub-array %d (k=%d)", ErrTableFull, subIdx, t.k)
}

// incrementCounter bumps the frequency lane of a slot via the in-memory
// ripple increment.
func (t *HashTable) incrementCounter(s *subarray.Subarray, slot, oneHotRow int) {
	lay := t.platform.layout
	base, lane := lay.CounterLocation(slot)
	oneHot := bitvec.New(lay.Cols)
	oneHot.Set(lane, true)
	s.Write(oneHotRow, oneHot)
	counterRows := make([]int, lay.CounterBits)
	for i := range counterRows {
		counterRows[i] = base + i
	}
	resv := lay.ReservedBase()
	s.RippleIncrement(counterRows, oneHotRow, resv+1, resv+2, resv+3)
}

// Count probes for km and returns its stored frequency (0 if absent). The
// probe path is identical to Add's; reading the counter lane issues one
// memory Read per counter bit-plane row.
func (t *HashTable) Count(km kmer.Kmer) uint32 {
	lay := t.platform.layout
	subIdx, home := t.place.Place(km)
	s := t.platform.Subarray(t.base + subIdx)
	s.SetStage(exec.StageHashmap)
	bm := t.bitmap(subIdx)

	tempQuery := lay.TempBase()
	xnorOut := lay.ReservedBase()
	s.Write(tempQuery, t.encodeRow(km))

	for probe := 0; probe < lay.KmerRows; probe++ {
		slot := (home + probe) % lay.KmerRows
		if !bm[slot] {
			return 0
		}
		t.compare(s, tempQuery, lay.KmerRow(slot), xnorOut)
		if s.MatchAllOnes(xnorOut) {
			return t.readCounter(s, slot)
		}
	}
	return 0
}

// readCounter reads a slot's frequency lane through the memory path.
func (t *HashTable) readCounter(s *subarray.Subarray, slot int) uint32 {
	lay := t.platform.layout
	base, lane := lay.CounterLocation(slot)
	var c uint32
	for bit := 0; bit < lay.CounterBits; bit++ {
		if s.Read(base + bit).Get(lane) {
			c |= 1 << uint(bit)
		}
	}
	return c
}

// Entries reads every stored (k-mer, count) pair back through the memory
// path, sorted by k-mer — used to hand the table to graph construction and
// to cross-check against the software reference. The read-back traffic is
// tagged StageDeBruijn: it is the dispatch feeding graph construction.
func (t *HashTable) Entries() []kmer.Entry {
	var out []kmer.Entry
	subs := make([]int, 0, len(t.occupied))
	for subIdx := range t.occupied {
		subs = append(subs, subIdx)
	}
	sort.Ints(subs)
	for _, subIdx := range subs {
		s := t.platform.Subarray(t.base + subIdx)
		s.SetStage(exec.StageDeBruijn)
		for slot, used := range t.occupied[subIdx] {
			if !used {
				continue
			}
			km := t.decodeRow(s.Read(t.platform.layout.KmerRow(slot)))
			out = append(out, kmer.Entry{Kmer: km, Count: t.readCounter(s, slot)})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Kmer < out[b].Kmer })
	return out
}

// Stats summarises the table's footprint and command mix.
type Stats struct {
	Distinct  int
	Subarrays int
	XNOROps   int64
	AddAAPs   int64
	CopyAAPs  int64
	DPUOps    int64
}

// Stats reports footprint and operation counts from the platform meter.
func (t *HashTable) Stats() Stats {
	m := t.platform.meter
	return Stats{
		Distinct:  t.Len(),
		Subarrays: len(t.occupied),
		XNOROps:   m.Counts[dram.CmdAAP2],
		AddAAPs:   m.Counts[dram.CmdAAP3],
		CopyAAPs:  m.Counts[dram.CmdAAPCopy],
		DPUOps:    m.Counts[dram.CmdDPU],
	}
}
