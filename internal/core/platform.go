// Package core is PIM-Assembler's public surface: the Platform ties the
// DRAM organisation, the functional computational sub-arrays, and the data
// mapping together, and exposes the three controller-level operations the
// paper's reconstructed algorithms are written in — PIM_XNOR (bulk row
// comparison), PIM_Add (bit-serial in-memory addition/increment), and
// MEM_insert (row write/copy) — plus the PIM-mapped k-mer hash table and
// de Bruijn graph engine built from them.
package core

import (
	"fmt"

	"pimassembler/internal/dram"
	"pimassembler/internal/mapping"
	"pimassembler/internal/sched"
	"pimassembler/internal/subarray"
)

// Platform is one PIM-Assembler memory group under a single controller.
//
// Sub-arrays are materialised lazily: a functional run touches only the
// sub-arrays its data maps to, while the geometry may describe thousands.
// The shared Meter accumulates the command stream of every sub-array; its
// latency is the *serial* command-slot total — the analytical layer
// (internal/perfmodel) divides by the exploitable parallelism.
type Platform struct {
	geom   dram.Geometry
	timing dram.Timing
	energy dram.Energy
	layout mapping.Layout

	subs  map[int]*subarray.Subarray
	meter *dram.Meter
	fault subarray.FaultHook
}

// NewPlatform builds a platform from explicit models.
func NewPlatform(g dram.Geometry, t dram.Timing, e dram.Energy) (*Platform, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	layout := mapping.DefaultLayout(g)
	if err := layout.Validate(g); err != nil {
		return nil, err
	}
	return &Platform{
		geom:   g,
		timing: t,
		energy: e,
		layout: layout,
		subs:   make(map[int]*subarray.Subarray),
		meter:  dram.NewMeter(t, e),
	}, nil
}

// NewDefaultPlatform builds the paper's §IV configuration.
func NewDefaultPlatform() *Platform {
	p, err := NewPlatform(dram.Default(), dram.DefaultTiming(), dram.DefaultEnergy())
	if err != nil {
		panic(err) // defaults are validated by construction
	}
	return p
}

// Geometry returns the platform's memory organisation.
func (p *Platform) Geometry() dram.Geometry { return p.geom }

// Timing returns the platform's timing model.
func (p *Platform) Timing() dram.Timing { return p.timing }

// Energy returns the platform's energy model.
func (p *Platform) Energy() dram.Energy { return p.energy }

// Layout returns the hash-table region layout.
func (p *Platform) Layout() mapping.Layout { return p.layout }

// Meter returns the shared command meter.
func (p *Platform) Meter() *dram.Meter { return p.meter }

// Subarray returns sub-array i, materialising it on first use.
func (p *Platform) Subarray(i int) *subarray.Subarray {
	if i < 0 || i >= p.geom.TotalSubarrays() {
		panic(fmt.Sprintf("core: sub-array %d outside [0,%d)", i, p.geom.TotalSubarrays()))
	}
	s, ok := p.subs[i]
	if !ok {
		s = subarray.New(p.geom, p.meter)
		s.SetFaultHook(p.fault)
		p.subs[i] = s
	}
	return s
}

// SetFaultHook installs a fault-injection hook on every sub-array the
// platform has materialised and every one it materialises later (nil
// clears). See internal/fault for rate-driven injectors.
func (p *Platform) SetFaultHook(h subarray.FaultHook) {
	p.fault = h
	for _, s := range p.subs {
		s.SetFaultHook(h)
	}
}

// MaterializedSubarrays returns how many sub-arrays a run has touched.
func (p *Platform) MaterializedSubarrays() int { return len(p.subs) }

// Reset clears all sub-array state and the meter.
func (p *Platform) Reset() {
	p.subs = make(map[int]*subarray.Subarray)
	p.meter.Reset()
}

// String summarises the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("core.Platform{%v, touched=%d}", p.geom, len(p.subs))
}

// ParallelEstimate converts the meter's accumulated command counts into a
// scheduled parallel makespan: the counts are spread round-robin over the
// sub-arrays this run touched and pushed through the controller's command
// scheduler (shared bus + per-bank activation budget). It is an estimate —
// the meter does not record per-command sub-array attribution — but it
// bounds how much of the serial command time real hardware would overlap.
func (p *Platform) ParallelEstimate() sched.Result {
	n := len(p.subs)
	if n == 0 {
		n = 1
	}
	trace := sched.RoundRobinTrace(p.meter.Counts, n)
	return sched.Schedule(trace, sched.DefaultConfig(p.geom, p.timing))
}
