// Package core is PIM-Assembler's public surface: the Platform ties the
// DRAM organisation, the functional computational sub-arrays, and the data
// mapping together, and exposes the three controller-level operations the
// paper's reconstructed algorithms are written in — PIM_XNOR (bulk row
// comparison), PIM_Add (bit-serial in-memory addition/increment), and
// MEM_insert (row write/copy) — plus the PIM-mapped k-mer hash table and
// de Bruijn graph engine built from them.
package core

import (
	"fmt"

	"pimassembler/internal/dram"
	"pimassembler/internal/exec"
	"pimassembler/internal/mapping"
	"pimassembler/internal/sched"
	"pimassembler/internal/subarray"
)

// Platform is one PIM-Assembler memory group under a single controller.
//
// Sub-arrays are materialised lazily: a functional run touches only the
// sub-arrays its data maps to, while the geometry may describe thousands.
// Every command a sub-array executes is accounted twice from one emission
// point: the shared Meter accumulates the *serial* command-slot totals, and
// the exec.Stream records the typed per-sub-array command — the artifact
// the controller scheduler (makespan) and the per-stage energy attribution
// consume.
type Platform struct {
	geom   dram.Geometry
	timing dram.Timing
	energy dram.Energy
	layout mapping.Layout

	subs   map[int]*subarray.Subarray
	meter  *dram.Meter
	stream *exec.Stream
	stage  exec.Stage
	fault  subarray.FaultHook

	// bulkMeters is the pool of private per-sub-array meters the bulk
	// operations swap in during a parallel region (see bulkRun); cached
	// here so repeated bulk calls don't reallocate them.
	bulkMeters []*dram.Meter
}

// NewPlatform builds a platform from explicit models.
func NewPlatform(g dram.Geometry, t dram.Timing, e dram.Energy) (*Platform, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	layout := mapping.DefaultLayout(g)
	if err := layout.Validate(g); err != nil {
		return nil, err
	}
	return &Platform{
		geom:   g,
		timing: t,
		energy: e,
		layout: layout,
		subs:   make(map[int]*subarray.Subarray),
		meter:  dram.NewMeter(t, e),
		stream: exec.NewStream(),
	}, nil
}

// NewDefaultPlatform builds the paper's §IV configuration.
func NewDefaultPlatform() *Platform {
	p, err := NewPlatform(dram.Default(), dram.DefaultTiming(), dram.DefaultEnergy())
	if err != nil {
		panic(err) // defaults are validated by construction
	}
	return p
}

// Geometry returns the platform's memory organisation.
func (p *Platform) Geometry() dram.Geometry { return p.geom }

// Timing returns the platform's timing model.
func (p *Platform) Timing() dram.Timing { return p.timing }

// Energy returns the platform's energy model.
func (p *Platform) Energy() dram.Energy { return p.energy }

// Layout returns the hash-table region layout.
func (p *Platform) Layout() mapping.Layout { return p.layout }

// Meter returns the shared command meter.
func (p *Platform) Meter() *dram.Meter { return p.meter }

// Stream returns the recorded per-sub-array command stream.
func (p *Platform) Stream() *exec.Stream { return p.stream }

// BeginStage sets the pipeline-stage tag stamped on subsequent commands of
// every sub-array (materialised now or later). Callers that drive one
// sub-array at a time (the hash table, the graph engine) may instead tag
// the individual sub-array via subarray.SetStage.
func (p *Platform) BeginStage(st exec.Stage) {
	p.stage = st
	for _, s := range p.subs {
		s.SetStage(st)
	}
}

// Subarray returns sub-array i, materialising it on first use.
//
// Materialisation mutates the platform's sub-array map and is NOT safe for
// concurrent use — parallel drivers must materialise every sub-array they
// will touch before spawning workers (the sub-array operations themselves
// record through mutex-protected sinks and may run concurrently on
// distinct sub-arrays).
func (p *Platform) Subarray(i int) *subarray.Subarray {
	if i < 0 || i >= p.geom.TotalSubarrays() {
		panic(fmt.Sprintf("core: sub-array %d outside [0,%d)", i, p.geom.TotalSubarrays()))
	}
	s, ok := p.subs[i]
	if !ok {
		s = subarray.New(p.geom, p.meter)
		s.SetFaultHook(p.fault)
		s.AttachRecorder(p.stream, i)
		s.SetStage(p.stage)
		p.subs[i] = s
	}
	return s
}

// SetFaultHook installs a fault-injection hook on every sub-array the
// platform has materialised and every one it materialises later (nil
// clears). See internal/fault for rate-driven injectors.
func (p *Platform) SetFaultHook(h subarray.FaultHook) {
	p.fault = h
	for _, s := range p.subs {
		s.SetFaultHook(h)
	}
}

// MaterializedSubarrays returns how many sub-arrays a run has touched.
func (p *Platform) MaterializedSubarrays() int { return len(p.subs) }

// Reset clears all sub-array state, the meter, and the command stream.
func (p *Platform) Reset() {
	p.subs = make(map[int]*subarray.Subarray)
	p.meter.Reset()
	p.stream.Reset()
	p.stage = exec.StageNone
}

// String summarises the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("core.Platform{%v, touched=%d}", p.geom, len(p.subs))
}

// SchedConfig returns the controller's scheduling parameters for this
// platform's geometry and timing.
func (p *Platform) SchedConfig() sched.Config {
	return sched.DefaultConfig(p.geom, p.timing)
}

// ParallelEstimate pushes the recorded command stream through the
// controller's command scheduler (shared bus + per-bank activation budget):
// every command carries the sub-array it actually executed in, so the
// resulting makespan reflects the run's real data placement rather than a
// synthetic spread of aggregate counts.
func (p *Platform) ParallelEstimate() sched.Result {
	return sched.ScheduleStream(p.stream.Commands(), p.SchedConfig())
}

// StageEstimates schedules each pipeline stage's command subsequence
// independently — the per-stage makespans the evaluation reports.
func (p *Platform) StageEstimates() map[exec.Stage]sched.Result {
	return sched.ScheduleStages(p.stream.Commands(), p.SchedConfig())
}

// Summary bundles every accounting view of one functional run: the serial
// meter totals, the scheduled whole-run makespan, the per-stage schedules,
// and the command histogram and energy attribution derived from the
// recorded stream. It is the functional half of an engine.Report.
type Summary struct {
	// Commands is the total command-slot count (the Meter view).
	Commands int64
	// SerialLatencyNS is the summed serial command time.
	SerialLatencyNS float64
	// EnergyPJ is the accumulated array dynamic energy.
	EnergyPJ float64
	// Subarrays is how many sub-arrays the run touched.
	Subarrays int
	// Makespan is the whole-run controller schedule.
	Makespan sched.Result
	// Stages holds each pipeline stage's independent schedule.
	Stages map[exec.Stage]sched.Result
	// Histogram is the per-stage × per-kind command breakdown.
	Histogram exec.Histogram
	// StageCosts is the per-stage serial time and energy attribution.
	StageCosts []exec.StageCost
}

// Summarize snapshots the platform's accounting after a run.
func (p *Platform) Summarize() Summary {
	return Summary{
		Commands:        p.meter.TotalCommands(),
		SerialLatencyNS: p.meter.LatencyNS,
		EnergyPJ:        p.meter.EnergyPJ,
		Subarrays:       len(p.subs),
		Makespan:        p.ParallelEstimate(),
		Stages:          p.StageEstimates(),
		Histogram:       p.stream.Histogram(),
		StageCosts:      p.stream.Attribute(p.timing, p.energy),
	}
}
