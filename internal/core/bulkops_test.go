package core

import (
	"testing"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/parallel"
	"pimassembler/internal/stats"
)

func randomBulkOperand(rng *stats.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Float64() < 0.5)
	}
	return v
}

// meterEqual asserts exact equality — including the floating-point latency
// and energy sums, which the per-sub-array meter merge keeps bit-identical
// regardless of worker count.
func meterEqual(t *testing.T, workers int, serial, par *Platform) {
	t.Helper()
	sm, pm := serial.Meter(), par.Meter()
	if sm.LatencyNS != pm.LatencyNS || sm.EnergyPJ != pm.EnergyPJ {
		t.Fatalf("workers=%d: meter totals diverged: latency %v vs %v ns, energy %v vs %v pJ",
			workers, sm.LatencyNS, pm.LatencyNS, sm.EnergyPJ, pm.EnergyPJ)
	}
	if len(sm.Counts) != len(pm.Counts) {
		t.Fatalf("workers=%d: command kinds %d vs %d", workers, len(sm.Counts), len(pm.Counts))
	}
	for k, v := range sm.Counts {
		if pm.Counts[k] != v {
			t.Fatalf("workers=%d: %v count %d vs %d", workers, k, pm.Counts[k], v)
		}
	}
}

// TestBulkXNORParallelMatchesSerial pins the determinism contract: the bulk
// fan-out must produce the identical digital result and identical meter
// totals for any worker count, because chunk->sub-array assignment, RNG-free
// data flow, and the ordered meter merge are all scheduling-independent.
func TestBulkXNORParallelMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := stats.NewRNG(41)
	serial := NewDefaultPlatform()
	n := serial.BulkPad(50 * serial.Geometry().RowBits())
	a := randomBulkOperand(rng, n)
	b := randomBulkOperand(rng, n)

	parallel.SetWorkers(1)
	want := serial.BulkXNOR(a, b)

	for _, workers := range []int{2, 4, 8} {
		parallel.SetWorkers(workers)
		par := NewDefaultPlatform()
		got := par.BulkXNOR(a, b)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: result diverged from serial", workers)
		}
		meterEqual(t, workers, serial, par)
	}
}

func TestBulkAddParallelMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := stats.NewRNG(42)
	const m = 5
	serial := NewDefaultPlatform()
	lanes := serial.BulkPad(20 * serial.Geometry().RowBits())
	a := make([]*bitvec.Vector, m)
	b := make([]*bitvec.Vector, m)
	for i := range a {
		a[i] = randomBulkOperand(rng, lanes)
		b[i] = randomBulkOperand(rng, lanes)
	}

	parallel.SetWorkers(1)
	want := serial.BulkAdd(a, b)

	for _, workers := range []int{3, 7} {
		parallel.SetWorkers(workers)
		par := NewDefaultPlatform()
		got := par.BulkAdd(a, b)
		for plane := range want {
			if !got[plane].Equal(want[plane]) {
				t.Fatalf("workers=%d: plane %d diverged from serial", workers, plane)
			}
		}
		meterEqual(t, workers, serial, par)
	}
}

// TestBulkSubarrayStateMatchesSerial checks the final cell state of every
// touched sub-array is worker-count independent: each chunk lands on the
// same sub-array (chunk mod active) under any schedule, so the last chunk
// written to a sub-array — and hence its residual rows — is fixed.
func TestBulkSubarrayStateMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := stats.NewRNG(43)
	serial := NewDefaultPlatform()
	n := serial.BulkPad(30 * serial.Geometry().RowBits())
	a := randomBulkOperand(rng, n)
	b := randomBulkOperand(rng, n)

	parallel.SetWorkers(1)
	serial.BulkXNOR(a, b)

	parallel.SetWorkers(4)
	par := NewDefaultPlatform()
	par.BulkXNOR(a, b)

	if serial.MaterializedSubarrays() != par.MaterializedSubarrays() {
		t.Fatalf("materialised %d vs %d sub-arrays", serial.MaterializedSubarrays(), par.MaterializedSubarrays())
	}
	base := serial.Layout().ReservedBase()
	for si := 0; si < serial.MaterializedSubarrays(); si++ {
		ss, ps := serial.Subarray(si), par.Subarray(si)
		for r := base; r < base+3; r++ {
			if !ss.Peek(r).Equal(ps.Peek(r)) {
				t.Fatalf("sub-array %d row %d diverged", si, r)
			}
		}
	}
}
