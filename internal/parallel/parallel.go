// Package parallel is the repository's deterministic fan-out engine: a
// bounded worker pool whose results are merged in task order, so every
// caller produces bit-identical output regardless of GOMAXPROCS, the worker
// count, or goroutine scheduling.
//
// The determinism contract every caller must honour:
//
//  1. Tasks are independent. fn(i) may not read or write state another task
//     touches, except through data races that are guarded elsewhere AND
//     commutative (e.g. dram.Meter's mutex-protected count/energy sums).
//  2. Randomness is pre-split. A task never draws from a shared RNG; the
//     caller derives one stats.RNG per task with SplitRNGs (serially, in
//     task order, before the fan-out), so the stream a task consumes does
//     not depend on which worker ran it or when.
//  3. Results are slotted by task index (Map) or written to caller-owned
//     per-task locations (ForEach), never appended in completion order.
//
// Under this contract workers=1 executes the exact computation the parallel
// run does, which is what the "parallel == serial" regression tests assert.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pimassembler/internal/stats"
)

// workerOverride holds the process-wide worker-count override set by
// SetWorkers (the -workers flag); 0 means "use GOMAXPROCS".
var workerOverride atomic.Int64

// Workers returns the default fan-out width: the SetWorkers override when
// one is set, otherwise GOMAXPROCS.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the default fan-out width (the -workers flag hook).
// n <= 0 restores the automatic GOMAXPROCS default. Output never depends on
// the setting — only wall-clock time does.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// ForEach runs fn(0..n-1) on the default worker count.
func ForEach(n int, fn func(i int)) {
	ForEachWorkers(Workers(), n, fn)
}

// ForEachWorkers runs fn(0..n-1) on at most workers goroutines. Tasks are
// handed out through an atomic counter, so assignment order is
// scheduling-dependent — callers must follow the package determinism
// contract. workers <= 1 degenerates to a plain loop on the calling
// goroutine. A panic in any task is re-raised on the caller after all
// workers have drained.
func ForEachWorkers(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					// Drain remaining tasks so sibling workers exit fast.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn(0..n-1) on the default worker count and returns the results
// in task order.
func Map[T any](n int, fn func(i int) T) []T {
	return MapWorkers[T](Workers(), n, fn)
}

// MapWorkers is Map with an explicit worker count.
func MapWorkers[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEachWorkers(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Span is one contiguous chunk of a task range.
type Span struct {
	Lo, Hi int // half-open [Lo, Hi)
}

// Len returns the span width.
func (s Span) Len() int { return s.Hi - s.Lo }

// Spans cuts [0, n) into chunks of at most size elements. The chunking
// depends only on n and size — never on the worker count — so per-chunk
// state (RNG streams, partial sums) is identical however the chunks are
// scheduled.
func Spans(n, size int) []Span {
	if n < 0 {
		panic(fmt.Sprintf("parallel: negative range %d", n))
	}
	if size <= 0 {
		panic(fmt.Sprintf("parallel: non-positive chunk size %d", size))
	}
	out := make([]Span, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Span{Lo: lo, Hi: hi})
	}
	return out
}

// SplitRNGs derives n independent generators from parent, serially and in
// task order — the pre-split rule of the determinism contract. The parent
// advances exactly n split steps regardless of how the children are used.
func SplitRNGs(parent *stats.RNG, n int) []*stats.RNG {
	out := make([]*stats.RNG, n)
	for i := range out {
		out[i] = parent.Split()
	}
	return out
}
