package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"pimassembler/internal/stats"
)

func TestForEachCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		var hits [n]atomic.Int64
		ForEachWorkers(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEachWorkers(4, 0, func(int) { ran = true })
	ForEachWorkers(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("empty range executed tasks")
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := MapWorkers[int](1, 500, fn)
	for _, workers := range []int{2, 3, 8} {
		got := MapWorkers[int](workers, 500, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEachWorkers(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestSpansPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, size, chunks int }{
		{0, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 7, 15},
	} {
		spans := Spans(tc.n, tc.size)
		if len(spans) != tc.chunks {
			t.Fatalf("Spans(%d,%d): %d chunks, want %d", tc.n, tc.size, len(spans), tc.chunks)
		}
		next := 0
		for _, s := range spans {
			if s.Lo != next || s.Hi <= s.Lo || s.Len() > tc.size {
				t.Fatalf("Spans(%d,%d): bad span %+v", tc.n, tc.size, s)
			}
			next = s.Hi
		}
		if next != tc.n {
			t.Fatalf("Spans(%d,%d): covered %d", tc.n, tc.size, next)
		}
	}
}

func TestSpansPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Spans(-1, 4) },
		func() { Spans(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSplitRNGsMatchesSerialSplits(t *testing.T) {
	a := stats.NewRNG(11)
	b := stats.NewRNG(11)
	got := SplitRNGs(a, 8)
	for i := 0; i < 8; i++ {
		want := b.Split()
		for d := 0; d < 16; d++ {
			if got[i].Uint64() != want.Uint64() {
				t.Fatalf("stream %d draw %d diverged from serial split order", i, d)
			}
		}
	}
	// The parent must have advanced identically too.
	if a.Uint64() != b.Uint64() {
		t.Fatal("parents diverged after SplitRNGs")
	}
}

func TestSetWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

// TestDeterministicSumUnderRace exercises the canonical usage pattern the
// rest of the repository relies on — per-task RNG streams pre-split, partial
// results slotted by index — and asserts the merged result is identical for
// every worker count. Run with -race this also proves the pool itself is
// race-free.
func TestDeterministicSumUnderRace(t *testing.T) {
	run := func(workers int) uint64 {
		rngs := SplitRNGs(stats.NewRNG(99), 64)
		parts := MapWorkers[uint64](workers, 64, func(i int) uint64 {
			var s uint64
			for d := 0; d < 1000; d++ {
				s += rngs[i].Uint64()
			}
			return s
		})
		var total uint64
		for _, p := range parts {
			total += p
		}
		return total
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}
