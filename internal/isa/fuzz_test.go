package isa

import (
	"bytes"
	"testing"
)

// FuzzDecodeProgram: arbitrary bytes must decode cleanly or error — never
// panic — and everything that decodes must re-encode to the same bytes
// (whole instructions only).
func FuzzDecodeProgram(f *testing.F) {
	var buf bytes.Buffer
	if err := (NewBuilder(256).Copy(1, 2).XNOR(1016, 1017, 3).Program()).Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 28))

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := DecodeProgram(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := prog.Encode(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("decode/encode not inverse for %d bytes", len(data))
		}
		// The disassembler must render anything that decoded.
		_ = prog.String()
		_ = prog.Profile()
	})
}

// FuzzExecutorStep: any decoded instruction must either execute or return
// an error — never panic — against a real sub-array.
func FuzzExecutorStep(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint16(0), uint16(1), uint16(2), uint16(3), uint32(256))
	f.Add(uint8(2), uint8(0), uint16(1016), uint16(1017), uint16(0), uint16(5), uint32(256))
	f.Add(uint8(3), uint8(2), uint16(9999), uint16(1), uint16(2), uint16(3), uint32(100))
	f.Fuzz(func(t *testing.T, op, mode uint8, s1, s2, s3, dst uint16, size uint32) {
		ins := Instruction{
			Op:   Opcode(op),
			Mode: Mode(mode),
			Src:  [3]uint16{s1, s2, s3},
			Dst:  dst,
			Size: size,
		}
		e := NewExecutor(newSub())
		_ = e.Step(ins) // must not panic
	})
}
