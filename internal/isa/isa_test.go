package isa

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/stats"
	"pimassembler/internal/subarray"
)

func newSub() *subarray.Subarray {
	return subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
}

func randomRow(rng *stats.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Float64() < 0.5)
	}
	return v
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := NewBuilder(256).
		Copy(5, 1016).
		Copy(6, 1017).
		XNOR(1016, 1017, 7).
		XOR(1016, 1017, 8).
		Sum(1016, 1017, 9).
		TRA(1016, 1017, 1018, 10).
		Match(7).
		ResetLatch().
		Program()
	var buf bytes.Buffer
	if err := prog.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(prog)*14 {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), len(prog)*14)
	}
	back, err := DecodeProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatalf("decoded %d instructions, want %d", len(back), len(prog))
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Fatalf("instruction %d: %+v != %+v", i, back[i], prog[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader(make([]byte, 14))); err == nil {
		t.Fatal("opcode 0 accepted")
	}
	if _, err := Decode(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated instruction accepted")
	}
}

func TestProgramText(t *testing.T) {
	prog := NewBuilder(256).Copy(1, 2).XNOR(1016, 1017, 3).Program()
	text := prog.String()
	for _, want := range []string{"AAP1 r1 -> r2", "AAP2.xnor r1016 r1017 -> r3"} {
		if !strings.Contains(text, want) {
			t.Errorf("program text missing %q:\n%s", want, text)
		}
	}
}

func TestExecutorXNORProgram(t *testing.T) {
	s := newSub()
	rng := stats.NewRNG(1)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	s.Poke(0, a)
	s.Poke(1, b)
	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)
	prog := NewBuilder(256).
		Copy(0, x1).
		Copy(1, x2).
		XNOR(x1, x2, 10).
		Match(10).
		Program()
	e := NewExecutor(s)
	if err := e.Run(prog); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(256)
	want.Xnor(a, b)
	if !s.Peek(10).Equal(want) {
		t.Fatal("program produced wrong XNOR")
	}
	if len(e.MatchResults) != 1 {
		t.Fatal("DPU match not recorded")
	}
	if e.MatchResults[0] != want.AllOnes() {
		t.Fatal("match result wrong")
	}
	if e.Executed != 4 {
		t.Fatalf("executed %d, want 4", e.Executed)
	}
}

func TestExecutorFullAdderProgram(t *testing.T) {
	// A complete 4-bit bit-serial addition written purely in the ISA.
	s := newSub()
	rng := stats.NewRNG(2)
	const m = 4
	aBase, bBase, dstBase, carryRow := 0, 10, 20, 30
	av := make([]uint64, 256)
	bv := make([]uint64, 256)
	for lane := 0; lane < 256; lane++ {
		av[lane] = rng.Uint64() & (1<<m - 1)
		bv[lane] = rng.Uint64() & (1<<m - 1)
	}
	for bit := 0; bit < m; bit++ {
		ra, rb := bitvec.New(256), bitvec.New(256)
		for lane := 0; lane < 256; lane++ {
			ra.Set(lane, av[lane]&(1<<uint(bit)) != 0)
			rb.Set(lane, bv[lane]&(1<<uint(bit)) != 0)
		}
		s.Poke(aBase+bit, ra)
		s.Poke(bBase+bit, rb)
	}
	zeroRow := 40
	s.Poke(zeroRow, bitvec.New(256))

	x1, x2, x3 := s.ComputeRow(0), s.ComputeRow(1), s.ComputeRow(2)
	b := NewBuilder(256).ResetLatch().Copy(zeroRow, x3)
	for bit := 0; bit < m; bit++ {
		b.Copy(aBase+bit, x1).Copy(bBase+bit, x2).Sum(x1, x2, dstBase+bit)
		b.Copy(aBase+bit, x1).Copy(bBase+bit, x2).TRA(x1, x2, x3, carryRow)
	}
	b.Copy(carryRow, dstBase+m)

	if err := NewExecutor(s).Run(b.Program()); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 256; lane++ {
		var got uint64
		for bit := 0; bit <= m; bit++ {
			if s.Peek(dstBase + bit).Get(lane) {
				got |= 1 << uint(bit)
			}
		}
		if got != av[lane]+bv[lane] {
			t.Fatalf("lane %d: %d + %d = %d", lane, av[lane], bv[lane], got)
		}
	}
}

func TestExecutorRejectsDataRowActivation(t *testing.T) {
	s := newSub()
	prog := Program{{Op: OpAAP2, Mode: ModeXNOR, Src: [3]uint16{1, 2}, Dst: 3, Size: 256}}
	if err := NewExecutor(s).Run(prog); err == nil {
		t.Fatal("two-row activation of data rows accepted")
	}
}

func TestExecutorEnforcesPaddingRule(t *testing.T) {
	s := newSub()
	x1, x2 := uint16(s.ComputeRow(0)), uint16(s.ComputeRow(1))
	for _, size := range []uint32{0, 100, 257} {
		prog := Program{{Op: OpAAP2, Mode: ModeXNOR, Src: [3]uint16{x1, x2}, Dst: 3, Size: size}}
		if err := NewExecutor(s).Run(prog); err == nil {
			t.Errorf("size %d accepted; must be a row multiple", size)
		}
	}
}

func TestExecutorRejectsOutOfRangeRows(t *testing.T) {
	s := newSub()
	prog := Program{{Op: OpAAP1, Src: [3]uint16{5000}, Dst: 1, Size: 256}}
	if err := NewExecutor(s).Run(prog); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	prog = Program{{Op: OpAAP1, Src: [3]uint16{1}, Dst: 5000, Size: 256}}
	if err := NewExecutor(s).Run(prog); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestBuilderPanicsOnBadRowSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(0)
}

// Property: any program built from the Builder round-trips the binary
// encoding exactly.
func TestEncodingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		b := NewBuilder(256)
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r := func() int { return rng.Intn(1024) }
			switch rng.Intn(6) {
			case 0:
				b.Copy(r(), r())
			case 1:
				b.XNOR(r(), r(), r())
			case 2:
				b.XOR(r(), r(), r())
			case 3:
				b.Sum(r(), r(), r())
			case 4:
				b.TRA(r(), r(), r(), r())
			case 5:
				b.Match(r())
			}
		}
		prog := b.Program()
		var buf bytes.Buffer
		if prog.Encode(&buf) != nil {
			return false
		}
		back, err := DecodeProgram(&buf)
		if err != nil || len(back) != len(prog) {
			return false
		}
		for i := range prog {
			if back[i] != prog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check: the ISA-level XNOR program and the sub-array convenience op
// account identical command streams.
func TestISACostMatchesDirectOps(t *testing.T) {
	direct := newSub()
	rng := stats.NewRNG(3)
	a, b := randomRow(rng, 256), randomRow(rng, 256)
	direct.Poke(0, a)
	direct.Poke(1, b)
	direct.XNOR(0, 1, 10)

	viaISA := newSub()
	viaISA.Poke(0, a)
	viaISA.Poke(1, b)
	x1, x2 := viaISA.ComputeRow(0), viaISA.ComputeRow(1)
	prog := NewBuilder(256).Copy(0, x1).Copy(1, x2).XNOR(x1, x2, 10).Program()
	if err := NewExecutor(viaISA).Run(prog); err != nil {
		t.Fatal(err)
	}
	if direct.Meter().LatencyNS != viaISA.Meter().LatencyNS {
		t.Fatalf("latency differs: direct %.1f, ISA %.1f",
			direct.Meter().LatencyNS, viaISA.Meter().LatencyNS)
	}
	if !direct.Peek(10).Equal(viaISA.Peek(10)) {
		t.Fatal("results differ")
	}
}

func TestProgramProfile(t *testing.T) {
	prog := NewBuilder(256).
		Copy(0, 1016).Copy(1, 1017).
		XNOR(1016, 1017, 2).
		TRA(1016, 1017, 1018, 3).
		Match(2).ResetLatch().
		Program()
	st := prog.Profile()
	if st.Total != 6 {
		t.Fatalf("total %d", st.Total)
	}
	if st.ByOpcode[OpAAP1] != 2 || st.ByOpcode[OpAAP2] != 1 || st.ByOpcode[OpAAP3] != 1 {
		t.Fatalf("mix %+v", st.ByOpcode)
	}
	if st.ComputeFraction < 0.33 || st.ComputeFraction > 0.34 {
		t.Fatalf("compute fraction %v, want 2/6", st.ComputeFraction)
	}
	if Program(nil).Profile().Total != 0 {
		t.Fatal("empty profile")
	}
}
