// Package isa implements PIM-Assembler's software interface (paper §II-B,
// "Software Support"): the three AAP-based instruction types that differ
// only in their number of activated source rows —
//
//	AAP(src, des, size)               type-1: RowClone copy
//	AAP(src1, src2, des, size)        type-2: two-row activation (X(N)OR)
//	AAP(src1, src2, src3, des, size)  type-3: triple-row activation (TRA)
//
// plus a DPU escape for the MAT-level reductions. Programs are sequences of
// instructions with a binary encoding, an assembler/disassembler, and an
// executor that drives the functional sub-array model while enforcing the
// paper's operand rules (vector sizes must be a multiple of the DRAM row
// size; multi-row activation only through the compute rows).
package isa

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Opcode enumerates the instruction types.
type Opcode uint8

const (
	// OpAAP1 is the type-1 copy AAP.
	OpAAP1 Opcode = iota + 1
	// OpAAP2 is the type-2 two-row-activation AAP. Mode selects the SA
	// configuration (XNOR2 to BL, XOR2 to BL, or Sum with the latch).
	OpAAP2
	// OpAAP3 is the type-3 triple-row-activation AAP (majority/carry).
	OpAAP3
	// OpDPUMatch is the DPU row-wide AND reduction (match detect).
	OpDPUMatch
	// OpDPUReset clears the SA carry latches.
	OpDPUReset
)

var opcodeNames = map[Opcode]string{
	OpAAP1:     "AAP1",
	OpAAP2:     "AAP2",
	OpAAP3:     "AAP3",
	OpDPUMatch: "DPU.match",
	OpDPUReset: "DPU.reset",
}

// String implements fmt.Stringer.
func (o Opcode) String() string {
	if n, ok := opcodeNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Mode selects the type-2 AAP's sense-amplifier configuration.
type Mode uint8

const (
	// ModeXNOR drives dst with XNOR2 (enable set 01110).
	ModeXNOR Mode = iota
	// ModeXOR drives dst with XOR2 (complementary MUX selection).
	ModeXOR
	// ModeSum drives dst with XOR2 ⊕ latched carry (the addition Sum
	// cycle).
	ModeSum
)

var modeNames = [...]string{ModeXNOR: "xnor", ModeXOR: "xor", ModeSum: "sum"}

// String implements fmt.Stringer.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Instruction is one decoded AAP-class instruction. Src rows beyond the
// opcode's arity are ignored. Size is in bits and must be a multiple of the
// row size (the padding rule); the current executor drives one sub-array,
// so Size equals one row.
type Instruction struct {
	Op   Opcode
	Mode Mode
	Src  [3]uint16
	Dst  uint16
	Size uint32
}

// srcCount returns the operand arity of the opcode.
func (i Instruction) srcCount() int {
	switch i.Op {
	case OpAAP1, OpDPUMatch:
		return 1
	case OpAAP2:
		return 2
	case OpAAP3:
		return 3
	default:
		return 0
	}
}

// String renders assembler-style text.
func (i Instruction) String() string {
	var sb strings.Builder
	sb.WriteString(i.Op.String())
	if i.Op == OpAAP2 {
		sb.WriteString("." + i.Mode.String())
	}
	for s := 0; s < i.srcCount(); s++ {
		fmt.Fprintf(&sb, " r%d", i.Src[s])
	}
	switch i.Op {
	case OpAAP1, OpAAP2, OpAAP3:
		fmt.Fprintf(&sb, " -> r%d (size=%d)", i.Dst, i.Size)
	}
	return sb.String()
}

// instrWords is the fixed encoding length: opcode+mode (2 bytes), three
// sources + destination (8 bytes), size (4 bytes).
const instrBytes = 14

// Encode writes the binary form.
func (i Instruction) Encode(w io.Writer) error {
	var buf [instrBytes]byte
	buf[0] = byte(i.Op)
	buf[1] = byte(i.Mode)
	binary.LittleEndian.PutUint16(buf[2:], i.Src[0])
	binary.LittleEndian.PutUint16(buf[4:], i.Src[1])
	binary.LittleEndian.PutUint16(buf[6:], i.Src[2])
	binary.LittleEndian.PutUint16(buf[8:], i.Dst)
	binary.LittleEndian.PutUint32(buf[10:], i.Size)
	_, err := w.Write(buf[:])
	return err
}

// Decode reads one instruction; io.EOF signals a clean end of stream.
func Decode(r io.Reader) (Instruction, error) {
	var buf [instrBytes]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Instruction{}, fmt.Errorf("isa: truncated instruction")
		}
		return Instruction{}, err
	}
	i := Instruction{
		Op:   Opcode(buf[0]),
		Mode: Mode(buf[1]),
		Dst:  binary.LittleEndian.Uint16(buf[8:]),
		Size: binary.LittleEndian.Uint32(buf[10:]),
	}
	i.Src[0] = binary.LittleEndian.Uint16(buf[2:])
	i.Src[1] = binary.LittleEndian.Uint16(buf[4:])
	i.Src[2] = binary.LittleEndian.Uint16(buf[6:])
	if _, ok := opcodeNames[i.Op]; !ok {
		return Instruction{}, fmt.Errorf("isa: unknown opcode %d", buf[0])
	}
	return i, nil
}

// Program is an instruction sequence.
type Program []Instruction

// Encode writes the whole program.
func (p Program) Encode(w io.Writer) error {
	for idx, ins := range p {
		if err := ins.Encode(w); err != nil {
			return fmt.Errorf("isa: instruction %d: %w", idx, err)
		}
	}
	return nil
}

// DecodeProgram reads instructions until EOF.
func DecodeProgram(r io.Reader) (Program, error) {
	var p Program
	for {
		ins, err := Decode(r)
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, err
		}
		p = append(p, ins)
	}
}

// String renders the program as assembler text.
func (p Program) String() string {
	var sb strings.Builder
	for idx, ins := range p {
		fmt.Fprintf(&sb, "%4d: %s\n", idx, ins)
	}
	return sb.String()
}

// Builder assembles programs with the operand conventions of the executor.
type Builder struct {
	prog    Program
	rowBits uint32
}

// NewBuilder creates a builder for a given row size in bits.
func NewBuilder(rowBits int) *Builder {
	if rowBits <= 0 {
		panic(fmt.Sprintf("isa: non-positive row size %d", rowBits))
	}
	return &Builder{rowBits: uint32(rowBits)}
}

// Copy appends a type-1 AAP.
func (b *Builder) Copy(src, dst int) *Builder {
	b.prog = append(b.prog, Instruction{
		Op: OpAAP1, Src: [3]uint16{uint16(src)}, Dst: uint16(dst), Size: b.rowBits,
	})
	return b
}

// XNOR appends a type-2 AAP in XNOR mode.
func (b *Builder) XNOR(src1, src2, dst int) *Builder {
	return b.aap2(ModeXNOR, src1, src2, dst)
}

// XOR appends a type-2 AAP in XOR mode.
func (b *Builder) XOR(src1, src2, dst int) *Builder {
	return b.aap2(ModeXOR, src1, src2, dst)
}

// Sum appends a type-2 AAP in Sum (latched carry) mode.
func (b *Builder) Sum(src1, src2, dst int) *Builder {
	return b.aap2(ModeSum, src1, src2, dst)
}

func (b *Builder) aap2(m Mode, src1, src2, dst int) *Builder {
	b.prog = append(b.prog, Instruction{
		Op: OpAAP2, Mode: m,
		Src: [3]uint16{uint16(src1), uint16(src2)}, Dst: uint16(dst), Size: b.rowBits,
	})
	return b
}

// TRA appends a type-3 AAP (majority + carry latch).
func (b *Builder) TRA(src1, src2, src3, dst int) *Builder {
	b.prog = append(b.prog, Instruction{
		Op:  OpAAP3,
		Src: [3]uint16{uint16(src1), uint16(src2), uint16(src3)}, Dst: uint16(dst), Size: b.rowBits,
	})
	return b
}

// Match appends a DPU row-wide AND reduction of row src.
func (b *Builder) Match(src int) *Builder {
	b.prog = append(b.prog, Instruction{Op: OpDPUMatch, Src: [3]uint16{uint16(src)}})
	return b
}

// ResetLatch appends a DPU latch clear.
func (b *Builder) ResetLatch() *Builder {
	b.prog = append(b.prog, Instruction{Op: OpDPUReset})
	return b
}

// Program returns the assembled program.
func (b *Builder) Program() Program { return b.prog }

// Stats summarises a program's instruction mix — the trace statistics the
// controller's profiler reports.
type Stats struct {
	ByOpcode map[Opcode]int
	Total    int
	// ComputeFraction is the share of type-2/3 AAPs (real in-memory
	// computation) versus staging copies and DPU housekeeping.
	ComputeFraction float64
}

// Profile computes the instruction mix of a program.
func (p Program) Profile() Stats {
	st := Stats{ByOpcode: make(map[Opcode]int), Total: len(p)}
	compute := 0
	for _, ins := range p {
		st.ByOpcode[ins.Op]++
		if ins.Op == OpAAP2 || ins.Op == OpAAP3 {
			compute++
		}
	}
	if st.Total > 0 {
		st.ComputeFraction = float64(compute) / float64(st.Total)
	}
	return st
}

// String renders the mix.
func (s Stats) String() string {
	return fmt.Sprintf("isa.Stats{total=%d, AAP1=%d, AAP2=%d, AAP3=%d, DPU=%d, compute=%.0f%%}",
		s.Total, s.ByOpcode[OpAAP1], s.ByOpcode[OpAAP2], s.ByOpcode[OpAAP3],
		s.ByOpcode[OpDPUMatch]+s.ByOpcode[OpDPUReset], 100*s.ComputeFraction)
}
