package isa

import (
	"fmt"

	"pimassembler/internal/exec"
	"pimassembler/internal/subarray"
)

// Executor runs programs against one functional sub-array, enforcing the
// hardware's operand rules: a type-2/3 AAP's sources must be compute rows
// (only the modified row decoder multi-activates), and sizes must match the
// row width. Staging operands into compute rows is the program's job (via
// Copy), exactly as the controller issues it.
type Executor struct {
	sub *subarray.Subarray
	// MatchResults collects the outcome of every DPU match instruction in
	// program order.
	MatchResults []bool
	// Executed counts completed instructions.
	Executed int
}

// NewExecutor wraps a sub-array.
func NewExecutor(s *subarray.Subarray) *Executor {
	return &Executor{sub: s}
}

// AttachRecorder routes the executor's command stream into a recorder: every
// instruction the executor steps is emitted as typed per-sub-array command
// records under the given platform-global sub-array id (the emission point
// is the sub-array primitive each instruction drives, so staged convenience
// sequences attribute each constituent AAP individually).
func (e *Executor) AttachRecorder(r exec.Recorder, subarrayID int) {
	e.sub.AttachRecorder(r, subarrayID)
}

// SetStage tags subsequently executed instructions with a pipeline stage.
func (e *Executor) SetStage(st exec.Stage) { e.sub.SetStage(st) }

// Run executes the whole program, returning the first error. Instruction
// effects up to the error remain applied (device semantics).
func (e *Executor) Run(p Program) error {
	for idx, ins := range p {
		if err := e.Step(ins); err != nil {
			return fmt.Errorf("isa: instruction %d (%s): %w", idx, ins, err)
		}
	}
	return nil
}

// Step executes one instruction.
func (e *Executor) Step(ins Instruction) error {
	if err := e.check(ins); err != nil {
		return err
	}
	switch ins.Op {
	case OpAAP1:
		e.sub.RowClone(int(ins.Src[0]), int(ins.Dst))
	case OpAAP2:
		switch ins.Mode {
		case ModeXNOR:
			e.sub.TwoRowXNOR(int(ins.Src[0]), int(ins.Src[1]), int(ins.Dst))
		case ModeXOR:
			e.sub.TwoRowXOR(int(ins.Src[0]), int(ins.Src[1]), int(ins.Dst))
		case ModeSum:
			e.sub.SumWithLatch(int(ins.Src[0]), int(ins.Src[1]), int(ins.Dst))
		default:
			return fmt.Errorf("invalid mode %v", ins.Mode)
		}
	case OpAAP3:
		e.sub.TRACarry(int(ins.Src[0]), int(ins.Src[1]), int(ins.Src[2]), int(ins.Dst))
	case OpDPUMatch:
		e.MatchResults = append(e.MatchResults, e.sub.MatchAllOnes(int(ins.Src[0])))
	case OpDPUReset:
		e.sub.ResetLatch()
	default:
		return fmt.Errorf("unknown opcode %v", ins.Op)
	}
	e.Executed++
	return nil
}

// check validates operand ranges and the paper's size rule before touching
// the array.
func (e *Executor) check(ins Instruction) error {
	rows := e.sub.Rows()
	cols := uint32(e.sub.Cols())
	switch ins.Op {
	case OpAAP1, OpAAP2, OpAAP3:
		if ins.Size == 0 || ins.Size%cols != 0 {
			return fmt.Errorf("size %d is not a multiple of the %d-bit row; pad the vector", ins.Size, cols)
		}
		if ins.Size != cols {
			return fmt.Errorf("size %d spans multiple rows; split across AAPs", ins.Size)
		}
		if int(ins.Dst) >= rows {
			return fmt.Errorf("destination row %d out of range", ins.Dst)
		}
	}
	for s := 0; s < ins.srcCount(); s++ {
		if int(ins.Src[s]) >= rows {
			return fmt.Errorf("source row %d out of range", ins.Src[s])
		}
	}
	// Multi-row activation is only wired through the MRD's compute rows.
	if ins.Op == OpAAP2 || ins.Op == OpAAP3 {
		for s := 0; s < ins.srcCount(); s++ {
			if !e.sub.IsComputeRow(int(ins.Src[s])) {
				return fmt.Errorf("source row %d is not a compute row; only x1..x%d multi-activate",
					ins.Src[s], 8)
			}
		}
	}
	return nil
}
