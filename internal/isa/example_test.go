package isa_test

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/dram"
	"pimassembler/internal/isa"
	"pimassembler/internal/subarray"
)

// A complete PIM_XNOR written in the AAP instruction set: stage operands
// into compute rows with type-1 AAPs, compute with a type-2 AAP, and check
// the match with the DPU.
func ExampleBuilder() {
	s := subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
	row := bitvec.New(256)
	row.Fill(true)
	s.Poke(0, row)
	s.Poke(1, row)

	x1, x2 := s.ComputeRow(0), s.ComputeRow(1)
	prog := isa.NewBuilder(256).
		Copy(0, x1).
		Copy(1, x2).
		XNOR(x1, x2, 10).
		Match(10).
		Program()
	fmt.Print(prog)

	e := isa.NewExecutor(s)
	if err := e.Run(prog); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("match:", e.MatchResults[0])
	// Output:
	//    0: AAP1 r0 -> r1016 (size=256)
	//    1: AAP1 r1 -> r1017 (size=256)
	//    2: AAP2.xnor r1016 r1017 -> r10 (size=256)
	//    3: DPU.match r10
	// match: true
}
