// Jobqueue: the concurrent assembly job server in miniature — a mixed
// batch of (reads, engine) jobs dispatched onto the bounded worker pool,
// with per-job timeouts, deterministic slot-ordered results, and the
// queue's counters/latency instrumentation. The per-job summaries printed
// here are bit-identical for any worker count.
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/metrics"
	"pimassembler/internal/stats"
)

func main() {
	// Three tenants' read sets from three synthetic genomes.
	workload := func(seed uint64, n int) []*genome.Sequence {
		rng := stats.NewRNG(seed)
		ref := genome.GenerateGenome(3_000, rng)
		return genome.NewReadSampler(ref, 101, 0, rng).Sample(n)
	}
	a, b, c := workload(101, 200), workload(102, 150), workload(103, 180)
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 16}
	counts := assembly.PaperOpCounts(genome.PaperChr14(), 16)

	specs := []jobqueue.Spec{
		{Name: "tenant-a", Engine: "software", Source: genome.NewSliceSource(a), Opts: opts},
		{Name: "tenant-b", Engine: "pim", Source: genome.NewSliceSource(b), Opts: opts},
		{Name: "tenant-c", Engine: "pim-assembler", Source: genome.NewSliceSource(c), Opts: opts},
		{Name: "chr14-estimate", Engine: "drisa-3t1c", Opts: engine.Options{Counts: &counts}},
		{Name: "tenant-a-k22", Engine: "software", Source: genome.NewSliceSource(a),
			Opts:    engine.Options{Options: assembly.Options{K: 22, MinOverlap: 18}},
			Timeout: 30 * time.Second,
			Retry:   jobqueue.RetryPolicy{MaxAttempts: 3, Backoff: 50 * time.Millisecond}},
	}

	counters := metrics.NewCounters()
	q := jobqueue.New(engine.Default(),
		jobqueue.WithWorkers(runtime.NumCPU()),
		jobqueue.WithCounters(counters))
	fmt.Printf("dispatching %d jobs on %d workers\n\n", len(specs), q.Workers())
	results := q.Run(context.Background(), specs)

	for _, r := range results {
		if r.State != jobqueue.StateDone {
			fmt.Printf("%-14s %-13s %s after %d attempts: %v\n",
				r.Spec.Name, r.Spec.Engine, r.State, r.Attempts, r.Err)
			continue
		}
		rep := r.Report
		fmt.Printf("%-14s %-13s done: ", r.Spec.Name, r.Spec.Engine)
		switch {
		case rep.Functional != nil:
			fmt.Printf("%d contigs, %d commands, makespan %.2f ms\n",
				len(rep.Contigs), rep.Functional.Commands, rep.Functional.Makespan.MakespanNS/1e6)
		case rep.Cost != nil && rep.Contigs == nil:
			fmt.Printf("modeled %s total %.1f s, %.1f W\n",
				rep.Cost.Platform, rep.Cost.TotalS(), rep.Cost.PowerW)
		case rep.Cost != nil:
			fmt.Printf("%d contigs, modeled total %.3g s on %s\n",
				len(rep.Contigs), rep.Cost.TotalS(), rep.Cost.Platform)
		default:
			fmt.Printf("%d contigs, N50=%d\n", len(rep.Contigs), debruijn.N50(rep.Contigs))
		}
	}

	fmt.Printf("\nqueue statistics:\n%s", counters)
}
