// Reliability: closes the loop between Table I's circuit-level Monte-Carlo
// study and the application — the per-mechanism error rates at each process
// corner become bit-flip injections on the functional sub-arrays, and the
// quality of the resulting assembly is scored against the reference.
package main

import (
	"fmt"

	"pimassembler/internal/assembly"
	"pimassembler/internal/core"
	"pimassembler/internal/fault"
	"pimassembler/internal/genome"
	"pimassembler/internal/metrics"
	"pimassembler/internal/stats"
)

func main() {
	rng := stats.NewRNG(404)
	ref := genome.GenerateGenome(1500, rng)
	reads := genome.NewReadSampler(ref, 90, 0, rng).Sample(200)
	opts := assembly.Options{K: 15}

	fmt.Println("assembly quality under injected process-variation faults")
	fmt.Printf("%-10s %-22s %s\n", "corner", "rates (2-row / TRA)", "result")

	for _, corner := range []struct {
		name      string
		variation float64
	}{
		{"±5%", 0.05},
		{"±10%", 0.10},
		{"±20%", 0.20},
		{"±30%", 0.30},
	} {
		rates := fault.RatesFromVariation(corner.variation, 5000, 11)
		p := core.NewDefaultPlatform()
		injector := fault.NewInjector(rates, stats.NewRNG(12))
		injector.AttachPlatform(p)
		res, err := assembly.AssemblePIM(p, reads, opts, 16)
		if err != nil {
			fmt.Printf("%-10s %-22s pipeline failed: %v\n", corner.name,
				fmt.Sprintf("%.2g / %.2g", rates.TwoRow, rates.TRA), err)
			continue
		}
		rep := metrics.Evaluate(res.Contigs, ref)
		fmt.Printf("%-10s %-22s genome %.1f%%, %d contigs, %d misassembled, %d bit flips\n",
			corner.name,
			fmt.Sprintf("%.2g / %.2g", rates.TwoRow, rates.TRA),
			100*rep.GenomeFraction, rep.Contigs, rep.Misassembled, injector.FlippedBits)
	}

	fmt.Println("\nTakeaway: at ±5% (error-free in Table I) the in-memory pipeline")
	fmt.Println("reproduces the reference assembly exactly. Even the residual")
	fmt.Println("~2x10^-4 two-row flip rate at ±10% fragments the graph — the bulk")
	fmt.Println("pipeline is unforgiving of compute errors, which is why the")
	fmt.Println("two-row mechanism's noise margin matters. Past the cliff (±20%+)")
	fmt.Println("corrupted match results insert runaway duplicates until the k-mer")
	fmt.Println("region overflows.")
}
