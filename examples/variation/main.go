// Variation: the circuit-level reliability study — Table I's Monte-Carlo
// process-variation sweep and the Fig. 3a transient waveforms, written as
// CSV for plotting.
package main

import (
	"fmt"
	"os"

	"pimassembler/internal/circuit"
	"pimassembler/internal/stats"
)

func main() {
	// Table I sweep, with a finer grid than the paper's five points.
	fmt.Println("Process-variation test error (10 000 trials per point):")
	fmt.Printf("%-10s %10s %10s\n", "variation", "TRA %", "2-row %")
	m := circuit.DefaultVariationModel()
	rng := stats.NewRNG(99)
	for v := 0.05; v <= 0.305; v += 0.025 {
		r := m.MonteCarlo(10000, v, rng.Split())
		fmt.Printf("±%-9.1f %10.2f %10.2f\n", v*100, r.TRAErrPct, r.TwoRowErrPct)
	}

	// Fig. 3a waveforms to CSV.
	const path = "xnor_transient.csv"
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "t_ns,pattern,vbl,vblbar,vcell,phase")
	cfg := circuit.DefaultTransientConfig()
	for p := 0; p < 4; p++ {
		di, dj := p&1 != 0, p&2 != 0
		pattern := fmt.Sprintf("%d%d", b2i(di), b2i(dj))
		for _, s := range circuit.SimulateXNOR2(cfg, di, dj) {
			fmt.Fprintf(f, "%.3f,%s,%.4f,%.4f,%.4f,%s\n",
				s.TimeNS, pattern, s.VBL, s.VBLbar, s.VCell, s.Phase)
		}
	}
	fmt.Printf("\nwrote transient waveforms for all four DiDj patterns to %s\n", path)
	fmt.Println("(cells charge to Vdd for DiDj in {00,11}, discharge for {10,01} — Fig. 3a)")
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
