// Assembly: the full genome-assembly scenario the paper's evaluation runs —
// scaled to a synthetic bacterial-sized genome — executed on both the
// software reference and the functional PIM simulator, cross-checked, with
// the paper's k sweep and per-platform cost estimates for the full-scale
// chromosome-14 workload.
package main

import (
	"context"
	"fmt"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/metrics"
	"pimassembler/internal/stats"
)

func main() {
	// A 50 kbp synthetic genome with planted repeats, sequenced at ~20x.
	rng := stats.NewRNG(2024)
	ref := genome.GenerateRepetitiveGenome(50_000, 300, 4, rng)
	sampler := genome.NewReadSampler(ref, 101, 0, rng)
	reads := sampler.Sample(10_000)
	fmt.Printf("workload: %d reads x %d bp from a %d bp genome (%.1fx coverage)\n",
		len(reads), 101, ref.Len(), float64(len(reads))*101/float64(ref.Len()))

	// The paper's k sweep on the software pipeline.
	fmt.Println("\nk sweep (software reference):")
	for _, k := range []int{16, 22, 26, 32} {
		res, err := assembly.Assemble(reads, assembly.Options{K: k})
		if err != nil {
			panic(err)
		}
		rep := metrics.Evaluate(res.Contigs, ref)
		fmt.Printf("  k=%-2d distinct=%7d  %s  hashmap=%v deBruijn=%v traverse=%v\n",
			k, res.Table.Len(), rep,
			res.Timings.Hashmap.Round(1e6), res.Timings.DeBruijn.Round(1e6), res.Timings.Traverse.Round(1e6))
	}

	// Every execution path is one engine in the pluggable registry: resolve
	// by name, run the same workload, compare the unified Reports.
	fmt.Println("\nregistered engines:")
	for _, e := range engine.Engines() {
		fmt.Printf("  %-14s %s\n", e.Name(), e.Describe())
	}

	// Functional PIM run on a slice of the workload, cross-checked against
	// the software engine's output.
	ctx := context.Background()
	small := reads[:600]
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 64}
	software, pim := mustEngine("software"), mustEngine("pim")
	sw, err := software.Assemble(ctx, genome.NewSliceSource(small), opts)
	if err != nil {
		panic(err)
	}
	pimRep, err := pim.Assemble(ctx, genome.NewSliceSource(small), opts)
	if err != nil {
		panic(err)
	}
	if len(sw.Contigs) != len(pimRep.Contigs) {
		panic(fmt.Sprintf("contig count mismatch: software %d, PIM %d", len(sw.Contigs), len(pimRep.Contigs)))
	}
	for i := range sw.Contigs {
		if !sw.Contigs[i].Seq.Equal(pimRep.Contigs[i].Seq) {
			panic("contig sequence mismatch between software and PIM engines")
		}
	}
	fn := pimRep.Functional
	fmt.Printf("\nfunctional PIM run (%d reads): contigs identical to software; %d DRAM commands, %.1f ms serial -> %.1f ms scheduled (%.0fx overlap), %.1f µJ\n",
		len(small), fn.Commands, fn.SerialLatencyNS/1e6, fn.Makespan.MakespanNS/1e6, fn.Makespan.Speedup, fn.EnergyPJ/1e6)

	// The recorded command stream attributes that cost to pipeline stages
	// and prices each stage under the controller scheduler.
	fmt.Println("per-stage attribution from the recorded command stream:")
	for _, c := range fn.StageCosts {
		fmt.Printf("  %s  makespan %.1f µs\n", c, fn.Stages[c.Stage].MakespanNS/1e3)
	}

	// Sharded stage 1 reproduces the serial run bit for bit.
	popts := opts
	popts.ParallelStage1 = true
	ppim, err := pim.Assemble(ctx, genome.NewSliceSource(small), popts)
	if err != nil {
		panic(err)
	}
	for i := range pimRep.Contigs {
		if !pimRep.Contigs[i].Seq.Equal(ppim.Contigs[i].Seq) {
			panic("parallel stage 1 diverged from the serial path")
		}
	}
	fmt.Printf("sharded stage 1: identical contigs, %d commands (serial %d)\n",
		ppim.Functional.Histogram.Commands, fn.Histogram.Commands)

	// Stage 3 extension: greedy scaffolding.
	scaffolds := assembly.ScaffoldContigs(sw.Contigs, 12)
	fmt.Printf("stage 3 (extension): %d contigs -> %d scaffolds\n", len(sw.Contigs), len(scaffolds))

	// Paired-end variant: mate pairs stitch repeat-fragmented contigs into
	// ordered chains with estimated gaps.
	pairedRng := stats.NewRNG(7)
	pairs := genome.NewPairedSampler(ref, 80, 600, 30, 0, pairedRng).Sample(4000)
	pres, err := assembly.Assemble(genome.Flatten(pairs), assembly.Options{K: 21})
	if err != nil {
		panic(err)
	}
	mates := assembly.MatePairScaffold(pres.Contigs, pairs, 21, 600, 3)
	fmt.Printf("mate-pair scaffolding: %d contigs -> %d scaffolds\n", len(pres.Contigs), len(mates))

	// Noisy reads: spectrum correction + graph simplification recover a
	// clean assembly from 0.3%% error reads.
	noisyRng := stats.NewRNG(8)
	noisy := genome.NewReadSampler(ref, 80, 0.003, noisyRng).Sample(12000)
	raw, err := assembly.Assemble(noisy, assembly.Options{K: 15})
	if err != nil {
		panic(err)
	}
	cleaned, err := assembly.Assemble(noisy, assembly.Options{K: 15, Correct: true, MinCount: 3, Simplify: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("error handling: raw %d contigs (N50 %d) -> corrected+simplified %d contigs (N50 %d)\n",
		len(raw.Contigs), debruijn.N50(raw.Contigs),
		len(cleaned.Contigs), debruijn.N50(cleaned.Contigs))

	// Full-scale chr14 estimates (the Fig. 9 analysis): the analytical
	// engines price a supplied operation profile directly, no reads needed.
	fmt.Println("\nfull-scale chromosome-14 estimates (k=16):")
	counts := assembly.PaperOpCounts(genome.PaperChr14(), 16)
	for _, name := range []string{"gpu", "pim-assembler", "ambit", "drisa-3t1c", "drisa-1t1c"} {
		rep, err := mustEngine(name).Assemble(ctx, nil, engine.Options{Counts: &counts})
		if err != nil {
			panic(err)
		}
		fmt.Println(" ", *rep.Cost)
	}
}

// mustEngine resolves a registry name or panics.
func mustEngine(name string) engine.Engine {
	e, err := engine.Lookup(name)
	if err != nil {
		panic(err)
	}
	return e
}
