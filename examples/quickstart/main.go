// Quickstart: build a PIM-Assembler platform, run an in-memory bulk XNOR,
// count k-mers in the simulated DRAM, and assemble a toy genome.
package main

import (
	"fmt"

	"pimassembler/internal/assembly"
	"pimassembler/internal/bitvec"
	"pimassembler/internal/core"
	"pimassembler/internal/genome"
	"pimassembler/internal/kmer"
	"pimassembler/internal/stats"
)

func main() {
	// 1. A platform with the paper's default memory organisation.
	p := core.NewDefaultPlatform()
	fmt.Println("platform:", p.Geometry())

	// 2. Bulk in-memory XNOR: the §II-B primitive. Operands must be padded
	//    to the 256-bit row size.
	n := p.BulkPad(1000)
	a, b := bitvec.New(n), bitvec.New(n)
	rng := stats.NewRNG(1)
	for i := 0; i < n; i++ {
		a.Set(i, rng.Float64() < 0.5)
		b.Set(i, rng.Float64() < 0.5)
	}
	res := p.BulkXNOR(a, b)
	fmt.Printf("bulk XNOR over %d bits: %d matching positions\n", n, res.PopCount())

	// 3. The PIM hash table: Fig. 5b's Hashmap procedure on the worked
	//    example S = CGTGCGTGCTT, k = 5.
	p.Reset()
	table := core.NewHashTable(p, 5, 1)
	s := genome.MustFromString("CGTGCGTGCTT")
	for _, km := range kmer.Extract(s, 5) {
		if _, err := table.Add(km); err != nil {
			panic(err)
		}
	}
	fmt.Println("hash table entries (read back from simulated DRAM):")
	for _, e := range table.Entries() {
		fmt.Printf("  %s  %d\n", e.Kmer.String(5), e.Count)
	}
	m := p.Meter()
	fmt.Printf("command stream: %d commands, %.1f µs serial, %.1f nJ\n",
		m.TotalCommands(), m.LatencyNS/1e3, m.EnergyPJ/1e3)

	// 4. End-to-end assembly of a random 2 kbp genome from overlapping reads.
	g := genome.GenerateGenome(2000, stats.NewRNG(42))
	reads := genome.TilingReads(g, 101, 60)
	out, err := assembly.Assemble(reads, assembly.Options{K: 21})
	if err != nil {
		panic(err)
	}
	fmt.Printf("assembled %d reads into %d contig(s); first contig %d bp (genome %d bp)\n",
		len(reads), len(out.Contigs), out.Contigs[0].Seq.Len(), g.Len())
}
