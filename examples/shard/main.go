// Shard: sharded multi-engine assembly in miniature — one read set split
// into deterministic shards, each shard dispatched onto its own engine
// from the registry (here a software/pim mix), and the per-shard reports
// merged back into one unified report. The merged contigs are byte-identical
// to an unsharded run for any shard count, and the printout is bit-identical
// for any worker count. The tail of the demo reruns the workload
// out-of-core: reads spilled to per-shard files under a resident cap far
// below the read count, assembled from disk, same contigs.
package main

import (
	"bytes"
	"context"
	"fmt"
	"runtime"

	"pimassembler/internal/assembly"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/shard"
	"pimassembler/internal/stats"
)

func main() {
	// One tenant's reads: 240 x 101 bp off a 3 kb synthetic genome.
	rng := stats.NewRNG(77)
	ref := genome.GenerateGenome(3_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(240)
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 16, Ref: ref}

	// The unsharded software reference, the baseline every sharded run
	// must reproduce.
	sw, err := engine.Lookup("software")
	if err != nil {
		panic(err)
	}
	base, err := sw.Assemble(context.Background(), genome.NewSliceSource(reads), opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("unsharded reference: %d contigs, N50=%d\n\n",
		len(base.Contigs), debruijn.N50(base.Contigs))

	// The same workload, four shards on a heterogeneous engine mix: the
	// shards run concurrently on the job-queue pool, software and
	// functional-PIM engines side by side.
	res, err := shard.Assemble(context.Background(), reads, shard.Plan{
		Shards:  4,
		Engines: []string{"software", "pim"},
		Opts:    opts,
		Workers: runtime.NumCPU(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sharded run (%s):\n", res.Report.Engine)
	for i, rep := range res.PerShard {
		fmt.Printf("  shard %d on %-10s %3d reads -> %d contigs\n",
			i, res.Engines[i], rep.Counts.ReadCount, len(rep.Contigs))
	}
	fmt.Printf("  functional shards: %d commands, %.2f µJ (sum), makespan %.2f ms (max)\n\n",
		res.Commands, res.EnergyPJ/1e6, res.MakespanNS/1e6)

	// The merge contract: same contigs, summed workload counts.
	identical := len(res.Report.Contigs) == len(base.Contigs)
	for i := range base.Contigs {
		if identical && !base.Contigs[i].Seq.Equal(res.Report.Contigs[i].Seq) {
			identical = false
		}
	}
	fmt.Printf("merged contigs identical to unsharded run: %v\n", identical)
	fmt.Printf("merged counts: %d reads, %.0f k-mers (%.0f distinct)\n",
		res.Report.Counts.ReadCount, res.Report.Counts.TotalKmers, res.Report.Counts.DistinctKmers)
	if res.Report.Quality != nil {
		fmt.Println("quality vs reference:", *res.Report.Quality)
	}

	// The same workload again, out-of-core: serialize the reads as a FASTA
	// stream (standing in for a file too large to load), spill it into
	// per-shard files under a 48-read resident cap, and assemble each shard
	// from disk. Peak memory tracks the cap, not the input; the contigs are
	// the same bytes.
	var fasta bytes.Buffer
	rw := genome.NewRecordWriter(&fasta)
	for i, r := range reads {
		if err := rw.Write(genome.Record{Name: fmt.Sprintf("r%d", i), Seq: r}); err != nil {
			panic(err)
		}
	}
	if err := rw.Flush(); err != nil {
		panic(err)
	}
	sp, err := shard.Partition(context.Background(), &fasta, genome.FormatFASTA,
		shard.SpillConfig{Shards: 4, MaxResidentReads: 48})
	if err != nil {
		panic(err)
	}
	defer sp.Close()
	fmt.Printf("\nout-of-core rerun: %d reads -> %d spill files (%d bytes, %d evictions)\n",
		sp.TotalReads(), sp.Shards(), sp.Bytes(), sp.Evictions())
	spill, err := shard.AssembleSpill(context.Background(), sp, shard.Plan{
		Opts:             opts,
		Workers:          runtime.NumCPU(),
		MaxResidentReads: 48,
	})
	if err != nil {
		panic(err)
	}
	same := len(spill.Report.Contigs) == len(base.Contigs)
	for i := range base.Contigs {
		if same && !base.Contigs[i].Seq.Equal(spill.Report.Contigs[i].Seq) {
			same = false
		}
	}
	fmt.Printf("spill-assembled contigs identical to unsharded run: %v\n", same)
}
