// Loadtest: closed-loop multi-tenant load against the assembled service —
// the admission-budget proof for EXPERIMENTS.md E20. Several tenants each
// drive a tight submit→poll→contigs loop at an offered load well above
// capacity while a sampler scrapes /metrics; the run passes only if the
// pending gauge NEVER exceeds the admission budget (excess arrivals are
// rejected 429 with Retry-After, not queued), every accepted job finishes,
// and the daemon drains cleanly at the end. Prints jobs/s and p50/p99
// turnaround for the accepted work. Exit code 1 on any violation.
package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimassembler/internal/genome"
	"pimassembler/internal/service"
	"pimassembler/internal/stats"
)

const (
	tenants    = 4
	perTenant  = 5 // closed-loop clients per tenant — above perBudget, so 429s are guaranteed under load
	duration   = 3 * time.Second
	maxPending = 8
	perBudget  = 3
)

func main() {
	if err := loadtest(); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest: FAIL:", err)
		os.Exit(1)
	}
}

func loadtest() error {
	// In-process daemon: same Server + Handler the binary serves.
	srv := service.New(service.Config{
		Workers:             2,
		MaxPending:          maxPending,
		MaxPendingPerTenant: perBudget,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("loadtest: daemon at %s (workers=2, budget=%d global / %d per tenant)\n",
		ts.URL, maxPending, perBudget)

	reads := workload(4242, 1200, 60)

	var (
		accepted, rejected, completed atomic.Int64
		mu                            sync.Mutex
		latencies                     []time.Duration
	)
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	// The budget monitor: scrape the pending gauge as fast as the server
	// answers; any sample above the budget fails the run.
	var budgetViolations atomic.Int64
	var maxSeen atomic.Int64
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		c := &service.Client{BaseURL: ts.URL, HTTPClient: &http.Client{Timeout: 5 * time.Second}}
		for ctx.Err() == nil {
			samples, err := c.Metrics(context.Background())
			if err != nil {
				continue
			}
			pending := int64(samples["pim_service_pending"])
			if pending > maxSeen.Load() {
				maxSeen.Store(pending)
			}
			if pending > maxPending {
				budgetViolations.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Closed-loop clients: each submits, polls to completion, fetches
	// contigs, repeats; overload shows up as 429s, never as queue growth.
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		for k := 0; k < perTenant; k++ {
			wg.Add(1)
			go func(tenant int) {
				defer wg.Done()
				c := &service.Client{
					BaseURL: ts.URL,
					APIKey:  fmt.Sprintf("tenant-%d", tenant),
				}
				for ctx.Err() == nil {
					start := time.Now()
					st, err := c.Submit(context.Background(), service.SubmitRequest{
						Engine: "software", Reads: reads, K: 16,
					})
					if err != nil {
						if apiErr, ok := err.(*service.APIError); ok && apiErr.Overloaded() {
							rejected.Add(1)
							time.Sleep(2 * time.Millisecond)
							continue
						}
						fmt.Fprintln(os.Stderr, "loadtest: submit:", err)
						return
					}
					accepted.Add(1)
					final, err := c.Wait(context.Background(), st.ID, time.Millisecond)
					if err != nil || final.State != "done" {
						fmt.Fprintf(os.Stderr, "loadtest: job %s: state=%q err=%v\n", st.ID, final.State, err)
						return
					}
					if _, err := c.Contigs(context.Background(), st.ID); err != nil {
						fmt.Fprintln(os.Stderr, "loadtest: contigs:", err)
						return
					}
					completed.Add(1)
					mu.Lock()
					latencies = append(latencies, time.Since(start))
					mu.Unlock()
				}
			}(t)
		}
	}
	wg.Wait()
	<-monitorDone

	// Drain and verify the clean stop.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	drained := srv.Drain(dctx)

	elapsed := duration
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("loadtest: %v offered load from %d clients across %d tenants\n",
		elapsed, tenants*perTenant, tenants)
	fmt.Printf("  accepted %d, completed %d, rejected %d (429/503 backpressure)\n",
		accepted.Load(), completed.Load(), rejected.Load())
	fmt.Printf("  throughput %.1f jobs/s, turnaround p50 %v p99 %v\n",
		float64(completed.Load())/elapsed.Seconds(), pct(latencies, 50), pct(latencies, 99))
	fmt.Printf("  pending high-water: observed %d, server %d, budget %d\n",
		maxSeen.Load(), srv.HighWater(), maxPending)
	fmt.Printf("  drain: %s\n", drained)

	if v := budgetViolations.Load(); v > 0 {
		return fmt.Errorf("pending gauge exceeded the admission budget %d in %d samples", maxPending, v)
	}
	if hw := srv.HighWater(); hw > maxPending {
		return fmt.Errorf("server high-water %d exceeded the admission budget %d", hw, maxPending)
	}
	if rejected.Load() == 0 {
		return fmt.Errorf("overload produced zero 429s — offered load never hit the budget, test proves nothing")
	}
	if srv.Pending() != 0 {
		return fmt.Errorf("%d jobs still pending after drain", srv.Pending())
	}
	fmt.Println("loadtest: OK — backpressure held, no unbounded queueing, clean drain")
	return nil
}

// workload renders a deterministic FASTA payload.
func workload(seed uint64, genomeLen, n int) string {
	rng := stats.NewRNG(seed)
	ref := genome.GenerateGenome(genomeLen, rng)
	seqs := genome.NewReadSampler(ref, 101, 0, rng).Sample(n)
	records := make([]genome.Record, len(seqs))
	for i, s := range seqs {
		records[i] = genome.Record{Name: fmt.Sprintf("r%d", i), Seq: s}
	}
	var sb strings.Builder
	if err := genome.WriteFASTA(&sb, records); err != nil {
		panic(err)
	}
	return sb.String()
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}
