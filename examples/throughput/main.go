// Throughput: the §II-B raw bulk-op study across all seven platforms — the
// data behind Fig. 3b — plus a functional cross-check that the simulated
// sub-arrays really compute what the analytical model prices.
package main

import (
	"fmt"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/core"
	"pimassembler/internal/platforms"
	"pimassembler/internal/stats"
)

func main() {
	fmt.Println("Raw bulk bit-wise throughput (Gbit/s) by operand size:")
	fmt.Printf("%-6s %-5s %12s %12s %12s\n", "plat", "op", "2^27", "2^28", "2^29")
	for _, r := range platforms.Fig3b() {
		fmt.Printf("%-6s %-5s %12.1f %12.1f %12.1f\n",
			r.Platform, r.Op, r.BitsPerS[0]/1e9, r.BitsPerS[1]/1e9, r.BitsPerS[2]/1e9)
	}

	fmt.Println("\nHeadline ratios (P-A vs baselines):")
	paX := throughput("P-A", platforms.OpXNOR)
	for _, base := range []string{"CPU", "GPU", "HMC", "Ambit", "D1", "D3"} {
		fmt.Printf("  vs %-5s XNOR %5.1fx   ADD %5.1fx\n", base,
			paX/throughput(base, platforms.OpXNOR),
			throughput("P-A", platforms.OpAdd)/throughput(base, platforms.OpAdd))
	}

	// Functional cross-check: run a (much smaller) bulk XNOR on the
	// simulated sub-arrays and verify against the host computation.
	p := core.NewDefaultPlatform()
	n := p.BulkPad(1 << 16)
	rng := stats.NewRNG(3)
	a, b := bitvec.New(n), bitvec.New(n)
	for i := 0; i < n; i++ {
		a.Set(i, rng.Float64() < 0.5)
		b.Set(i, rng.Float64() < 0.5)
	}
	got := p.BulkXNOR(a, b)
	want := bitvec.New(n)
	want.Xnor(a, b)
	if !got.Equal(want) {
		panic("functional bulk XNOR diverged from host computation")
	}
	m := p.Meter()
	fmt.Printf("\nfunctional cross-check: %d-bit XNOR on %d sub-arrays — %d commands, result verified\n",
		n, p.MaterializedSubarrays(), m.TotalCommands())
}

func throughput(name string, op platforms.BulkOp) float64 {
	for _, r := range platforms.Fig3b() {
		if r.Platform == name && r.Op == op {
			return r.MeanThroughput()
		}
	}
	panic("unknown platform " + name)
}
