package pimassembler

import (
	"fmt"
	"testing"

	"pimassembler/internal/bitvec"
	"pimassembler/internal/core"
	"pimassembler/internal/dram"
	"pimassembler/internal/kmer"
	"pimassembler/internal/sched"
	"pimassembler/internal/stats"
	"pimassembler/internal/subarray"
)

// TestEndToEndOpProfileCosts is the application-level ablation: building
// the same k-mer table with the native single-cycle XNOR vs the
// majority-emulated profile must produce identical entries while the
// emulated command stream costs several times more — the functional
// counterpart of the Fig. 9 PIM ratios.
func TestEndToEndOpProfileCosts(t *testing.T) {
	rng := stats.NewRNG(9)
	distinct := make([]kmer.Kmer, 150)
	for i := range distinct {
		distinct[i] = kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(16))
	}
	// Repeat-heavy stream (coverage ~6x): most Adds hit an existing entry
	// and exercise the comparison path, as genome workloads do.
	var kms []kmer.Kmer
	for round := 0; round < 6; round++ {
		kms = append(kms, distinct...)
	}
	build := func(profile core.OpProfile) ([]kmer.Entry, float64) {
		p := core.NewDefaultPlatform()
		tbl := core.NewHashTable(p, 16, 8)
		tbl.SetOpProfile(profile)
		for _, km := range kms {
			if _, err := tbl.Add(km); err != nil {
				t.Fatal(err)
			}
		}
		return tbl.Entries(), p.Meter().LatencyNS
	}
	nativeEntries, nativeNS := build(core.OpsNative)
	emuEntries, emuNS := build(core.OpsMajorityEmulated)
	if len(nativeEntries) != len(emuEntries) {
		t.Fatalf("entry counts differ: %d vs %d", len(nativeEntries), len(emuEntries))
	}
	for i := range nativeEntries {
		if nativeEntries[i] != emuEntries[i] {
			t.Fatalf("entry %d differs between profiles", i)
		}
	}
	// The comparison path costs 6x more per probe under emulation, but the
	// counter increment (shared by both profiles) dominates an Add — so the
	// end-to-end gap is real yet bounded, mirroring how the paper's 7x raw
	// cycle advantage compresses to 2.9x on the full pipeline.
	ratio := emuNS / nativeNS
	if ratio < 1.05 || ratio > 3 {
		t.Fatalf("emulated/native latency ratio %.2f outside the plausible band", ratio)
	}
}

// BenchmarkAblationRowCloneStaging separates raw compute cycles from the
// end-to-end cost: the 1-cycle XNOR with operands already in compute rows
// versus the 3-cycle staged form. This is why the paper's raw-cycle gap vs
// Ambit (7x) compresses to 2.3x end to end.
func BenchmarkAblationRowCloneStaging(b *testing.B) {
	b.Run("compute-only", func(b *testing.B) {
		s := subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
		rng := stats.NewRNG(10)
		x1, x2 := s.ComputeRow(0), s.ComputeRow(1)
		s.Poke(x1, randomRow(rng, 256))
		s.Poke(x2, randomRow(rng, 256))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.TwoRowXNOR(x1, x2, 5)
		}
		b.ReportMetric(float64(s.Meter().TotalCommands())/float64(b.N), "cmds/op")
	})
	b.Run("with-staging", func(b *testing.B) {
		s := subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
		rng := stats.NewRNG(10)
		s.Poke(0, randomRow(rng, 256))
		s.Poke(1, randomRow(rng, 256))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.XNOR(0, 1, 5)
		}
		b.ReportMetric(float64(s.Meter().TotalCommands())/float64(b.N), "cmds/op")
	})
}

// BenchmarkAblationPartitioning compares the correlated hash placement
// (k-mers spread across sub-arrays, short probe chains) against cramming
// the same k-mer set into a single sub-array region (long probe chains):
// the motivation for Fig. 6's partitioning. Metric: XNOR probes per insert.
func BenchmarkAblationPartitioning(b *testing.B) {
	rng := stats.NewRNG(11)
	kms := make([]kmer.Kmer, 700)
	for i := range kms {
		kms[i] = kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(16))
	}
	for _, cfg := range []struct {
		name string
		subs int
	}{{"correlated-16-subarrays", 16}, {"single-subarray", 1}} {
		b.Run(cfg.name, func(b *testing.B) {
			var probes float64
			for i := 0; i < b.N; i++ {
				p := core.NewDefaultPlatform()
				tbl := core.NewHashTable(p, 16, cfg.subs)
				for _, km := range kms {
					if _, err := tbl.Add(km); err != nil {
						b.Fatal(err)
					}
				}
				probes = float64(p.Meter().Counts[dram.CmdDPU]) / float64(len(kms))
			}
			b.ReportMetric(probes, "match-probes/insert")
		})
	}
}

// BenchmarkAblationBitSerialAdd compares the in-memory bit-serial addition
// against the DPU performing the same 256-lane addition word-serially
// through the memory port (read both planes, add in the DPU, write back) —
// the crossover DESIGN.md §5 calls out.
func BenchmarkAblationBitSerialAdd(b *testing.B) {
	for _, m := range []int{8, 32} {
		b.Run(fmt.Sprintf("in-memory/width%d", m), func(b *testing.B) {
			s := newBenchSubarray(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.BitSerialAdd(0, 100, 200, 300, m)
			}
			b.ReportMetric(float64(s.Meter().TotalCommands())/float64(b.N), "cmds/op")
			b.ReportMetric(s.Meter().LatencyNS/float64(b.N), "modeled-ns/op")
			// In-memory adds run concurrently in every sub-array; the cost
			// is the same whether 1 or 8 sub-arrays of a MAT are adding.
			b.ReportMetric(s.Meter().LatencyNS/float64(b.N), "modeled-ns/8-subarrays")
		})
		b.Run(fmt.Sprintf("dpu-word/width%d", m), func(b *testing.B) {
			s := newBenchSubarray(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dpuWordAdd(s, 0, 100, 200, m)
			}
			b.ReportMetric(float64(s.Meter().TotalCommands())/float64(b.N), "cmds/op")
			b.ReportMetric(s.Meter().LatencyNS/float64(b.N), "modeled-ns/op")
			// One DPU serves a whole MAT: with all 8 sub-arrays adding, the
			// shared word-serial unit becomes the bottleneck — the
			// crossover that justifies in-memory arithmetic for bulk work.
			b.ReportMetric(8*s.Meter().LatencyNS/float64(b.N), "modeled-ns/8-subarrays")
		})
	}
}

func newBenchSubarray(m int) *subarray.Subarray {
	s := subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
	rng := stats.NewRNG(12)
	for bit := 0; bit < m; bit++ {
		s.Poke(bit, randomRow(rng, 256))
		s.Poke(100+bit, randomRow(rng, 256))
	}
	return s
}

// dpuWordAdd models the non-PIM alternative: stream both bit-plane regions
// through the row buffer to the DPU, add there, and write the result back.
func dpuWordAdd(s *subarray.Subarray, aBase, bBase, dstBase, m int) {
	planesA := make([]*bitvec.Vector, m)
	planesB := make([]*bitvec.Vector, m)
	for i := 0; i < m; i++ {
		planesA[i] = s.Read(aBase + i)
		planesB[i] = s.Read(bBase + i)
	}
	out := make([]*bitvec.Vector, m+1)
	for i := range out {
		out[i] = bitvec.New(s.Cols())
	}
	for lane := 0; lane < s.Cols(); lane++ {
		var av, bv uint64
		for i := 0; i < m; i++ {
			if planesA[i].Get(lane) {
				av |= 1 << uint(i)
			}
			if planesB[i].Get(lane) {
				bv |= 1 << uint(i)
			}
		}
		sum := av + bv
		for i := 0; i <= m; i++ {
			out[i].Set(lane, sum&(1<<uint(i)) != 0)
		}
	}
	// The DPU is word-serial: one op per lane, then write back.
	for lane := 0; lane < s.Cols(); lane++ {
		s.Meter().Record(dram.CmdDPU, 1)
	}
	for i := 0; i <= m; i++ {
		s.Write(dstBase+i, out[i])
	}
}

// BenchmarkAblationHashCapacity sweeps the sub-array hash-region occupancy
// and reports the probe-chain growth — the load-factor behaviour behind the
// correlated partitioning's sizing.
func BenchmarkAblationHashCapacity(b *testing.B) {
	for _, fill := range []float64{0.25, 0.5, 0.75, 0.9} {
		b.Run(fmt.Sprintf("load%.0f%%", fill*100), func(b *testing.B) {
			var probes float64
			for i := 0; i < b.N; i++ {
				p := core.NewDefaultPlatform()
				tbl := core.NewHashTable(p, 16, 1)
				rng := stats.NewRNG(13)
				n := int(fill * float64(p.Layout().KmerRows))
				for j := 0; j < n; j++ {
					if _, err := tbl.Add(kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(16))); err != nil {
						b.Fatal(err)
					}
				}
				probes = float64(p.Meter().Counts[dram.CmdDPU]) / float64(n)
			}
			b.ReportMetric(probes, "match-probes/insert")
		})
	}
}

// BenchmarkAblationSchedulerSpread shows what the controller scheduler buys:
// the same command load mapped onto 1, 16, or 256 sub-arrays, with the
// makespan collapsing as independent sub-arrays overlap.
func BenchmarkAblationSchedulerSpread(b *testing.B) {
	mix := []struct {
		kind dram.CommandKind
		n    int
	}{
		{dram.CmdAAPCopy, 2048},
		{dram.CmdAAP2, 1024},
		{dram.CmdAAP3, 512},
	}
	g := dram.Default()
	tm := dram.DefaultTiming()
	for _, spread := range []int{1, 16, 256} {
		var cmds []sched.Command
		for _, m := range mix {
			for i := 0; i < m.n; i++ {
				cmds = append(cmds, sched.Command{Subarray: i % spread, Kind: m.kind})
			}
		}
		b.Run(fmt.Sprintf("subarrays%d", spread), func(b *testing.B) {
			var r sched.Result
			for i := 0; i < b.N; i++ {
				r = sched.Schedule(cmds, sched.DefaultConfig(g, tm))
			}
			b.ReportMetric(r.MakespanNS/1e3, "makespan-µs")
			b.ReportMetric(r.Speedup, "overlap-x")
		})
	}
}
