// Package pimassembler's root benchmark suite regenerates every evaluation
// artefact (one benchmark per paper table/figure — see DESIGN.md §3) and
// runs the ablation studies of DESIGN.md §5. Figure benchmarks exercise the
// same eval runners the cmd/pimassembler binary uses; functional benchmarks
// drive the bit-accurate simulator.
package pimassembler

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"pimassembler/internal/assembly"
	"pimassembler/internal/bitvec"
	"pimassembler/internal/circuit"
	"pimassembler/internal/core"
	"pimassembler/internal/debruijn"
	"pimassembler/internal/dram"
	"pimassembler/internal/engine"
	"pimassembler/internal/eval"
	"pimassembler/internal/genome"
	"pimassembler/internal/jobqueue"
	"pimassembler/internal/kmer"
	"pimassembler/internal/parallel"
	"pimassembler/internal/perfmodel"
	"pimassembler/internal/platforms"
	"pimassembler/internal/shard"
	"pimassembler/internal/stats"
	"pimassembler/internal/subarray"
)

// --- E1: Fig. 3a ---

func BenchmarkFig3aTransient(b *testing.B) {
	cfg := circuit.DefaultTransientConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 4; p++ {
			circuit.SimulateXNOR2(cfg, p&1 != 0, p&2 != 0)
		}
	}
}

// --- E2: Fig. 3b ---

func BenchmarkFig3bThroughput(b *testing.B) {
	for _, spec := range platforms.All() {
		for _, op := range []platforms.BulkOp{platforms.OpXNOR, platforms.OpAdd} {
			b.Run(fmt.Sprintf("%s/%v", spec.Name, op), func(b *testing.B) {
				var acc float64
				for i := 0; i < b.N; i++ {
					for _, n := range platforms.Fig3bSizes() {
						acc += spec.Throughput(op, n)
					}
				}
				if acc <= 0 {
					b.Fatal("degenerate throughput")
				}
				b.ReportMetric(spec.Throughput(op, 1<<28)/1e9, "Gbit/s-modeled")
			})
		}
	}
}

// --- E3: Table I ---

func BenchmarkTableIMonteCarlo(b *testing.B) {
	m := circuit.DefaultVariationModel()
	// The paper's full per-point trial budget, at the hardest sweep point,
	// serial vs pooled; both produce the identical result by construction.
	const trials = 10_000
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			defer parallel.SetWorkers(0)
			parallel.SetWorkers(mode.workers)
			rng := stats.NewRNG(1)
			b.ReportAllocs()
			var r circuit.VariationResult
			for i := 0; i < b.N; i++ {
				r = m.MonteCarlo(trials, 0.20, rng.Split())
			}
			b.ReportMetric(r.TRAErrPct, "TRA-err-%")
			b.ReportMetric(r.TwoRowErrPct, "2row-err-%")
		})
	}
}

// --- E4: area overhead ---

func BenchmarkAreaOverhead(b *testing.B) {
	m := perfmodel.DefaultAreaModel()
	g := platforms.PIMGeometry()
	var rep perfmodel.AreaReport
	for i := 0; i < b.N; i++ {
		rep = m.Overhead(g)
	}
	b.ReportMetric(rep.OverheadPct, "area-%")
}

// --- E5/E6: Fig. 9 ---

func BenchmarkFig9Assembly(b *testing.B) {
	for _, k := range genome.PaperChr14().KmerRanges {
		counts := eval.PaperCounts(k)
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var pa, gpu perfmodel.StageCost
			for i := 0; i < b.N; i++ {
				for _, s := range eval.Fig9Platforms() {
					c := perfmodel.AssemblyCost(s, counts)
					switch s.Name {
					case "P-A":
						pa = c
					case "GPU":
						gpu = c
					}
				}
			}
			b.ReportMetric(pa.TotalS(), "P-A-s")
			b.ReportMetric(gpu.TotalS()/pa.TotalS(), "speedup-vs-GPU")
			b.ReportMetric(pa.PowerW, "P-A-W")
		})
	}
}

// --- E7: Fig. 10 ---

func BenchmarkFig10Parallelism(b *testing.B) {
	for _, k := range []int{16, 32} {
		counts := eval.PaperCounts(k)
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var pts []perfmodel.PdPoint
			for i := 0; i < b.N; i++ {
				pts = perfmodel.PdTradeoff(counts, eval.Fig10Pds())
			}
			b.ReportMetric(float64(perfmodel.OptimalPd(pts)), "optimal-Pd")
		})
	}
}

// --- E8/E9: Fig. 11 ---

func BenchmarkFig11Bottleneck(b *testing.B) {
	var us []perfmodel.Utilization
	for i := 0; i < b.N; i++ {
		us = eval.Fig11()
	}
	for _, u := range us {
		if u.Platform == "P-A" && u.K == 16 {
			b.ReportMetric(u.MBRPct, "P-A-MBR-%")
			b.ReportMetric(u.RURPct, "P-A-RUR-%")
		}
	}
}

// --- E10: headline summary (exercises the full harness) ---

func BenchmarkSummaryHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eval.RenderFig3b(io.Discard)
		eval.RenderFig9(io.Discard)
	}
}

// --- Functional simulator benchmarks ---

func BenchmarkFunctionalXNORRow(b *testing.B) {
	s := subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
	rng := stats.NewRNG(1)
	a := randomRow(rng, 256)
	c := randomRow(rng, 256)
	s.Poke(0, a)
	s.Poke(1, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.XNOR(0, 1, 2)
	}
}

func BenchmarkFunctionalBitSerialAdd(b *testing.B) {
	for _, m := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("width%d", m), func(b *testing.B) {
			s := subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
			rng := stats.NewRNG(2)
			for bit := 0; bit < m; bit++ {
				s.Poke(bit, randomRow(rng, 256))
				s.Poke(100+bit, randomRow(rng, 256))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.BitSerialAdd(0, 100, 200, 300, m)
			}
		})
	}
}

func BenchmarkFunctionalBulkXNOR(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			defer parallel.SetWorkers(0)
			parallel.SetWorkers(mode.workers)
			p := core.NewDefaultPlatform()
			n := p.BulkPad(1 << 14)
			rng := stats.NewRNG(3)
			x, y := bitvec.New(n), bitvec.New(n)
			for i := 0; i < n; i++ {
				x.Set(i, rng.Float64() < 0.5)
				y.Set(i, rng.Float64() < 0.5)
			}
			b.SetBytes(int64(n / 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.BulkXNOR(x, y)
			}
		})
	}
}

func BenchmarkFunctionalHashTableAdd(b *testing.B) {
	p := core.NewDefaultPlatform()
	tbl := core.NewHashTable(p, 16, 64)
	rng := stats.NewRNG(4)
	kms := make([]kmer.Kmer, 4096)
	for i := range kms {
		kms[i] = kmer.Kmer(rng.Uint64()) & kmer.Kmer(kmer.Mask(16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Add(kms[i%len(kms)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoftwareAssembly isolates the software hot path at the paper's
// bracketing k values: stage 1 — k-mer counting, serial CountReads vs the
// hash-partitioned parallel counter at NumCPU workers — and stage 2 — graph
// build plus traversal (Euler attempt + contigs) on the dense
// interned-ID/CSR core against the retained map-based reference builder.
// The allocs/op column of dense-vs-map is the PR 6 acceptance metric; the
// count-serial / count-parallel wall-clock ratio is the PR 7 one.
func BenchmarkSoftwareAssembly(b *testing.B) {
	rng := stats.NewRNG(8)
	ref := genome.GenerateGenome(20_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(2_000)
	for _, k := range []int{16, 32} {
		b.Run(fmt.Sprintf("k%d/count-serial", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kmer.CountReads(reads, k)
			}
		})
		b.Run(fmt.Sprintf("k%d/count-parallel", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kmer.CountReadsParallel(reads, k, parallel.Workers())
			}
		})
		tbl := kmer.CountReads(reads, k)
		b.Run(fmt.Sprintf("k%d/dense", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := debruijn.Build(tbl)
				g.EulerPath()
				g.Contigs()
			}
		})
		b.Run(fmt.Sprintf("k%d/map", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := debruijn.BuildMap(tbl)
				g.EulerPath()
				g.Contigs()
			}
		})
	}
}

// BenchmarkCountReadsParallel measures stage 1 in isolation on the
// BenchmarkSoftwareAssembly workload: the serial open-addressing table
// against the hash-partitioned counter across worker counts. kmers/s is the
// headline rate; the serial-vs-NumCPU ratio is the PR 7 acceptance metric.
func BenchmarkCountReadsParallel(b *testing.B) {
	rng := stats.NewRNG(8)
	ref := genome.GenerateGenome(20_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(2_000)
	var totalKmers int64
	for _, r := range reads {
		totalKmers += int64(r.Len() - 16 + 1)
	}
	for _, k := range []int{16, 32} {
		b.Run(fmt.Sprintf("k%d/serial", k), func(b *testing.B) {
			b.ReportAllocs()
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				kmer.CountReads(reads, k)
				elapsed += time.Since(start)
			}
			b.ReportMetric(float64(totalKmers)*float64(b.N)/elapsed.Seconds(), "kmers/s")
		})
		workerSweep := []int{1, 4}
		if n := parallel.Workers(); n != 1 && n != 4 {
			workerSweep = append(workerSweep, n)
		}
		for _, w := range workerSweep {
			b.Run(fmt.Sprintf("k%d/workers%d", k, w), func(b *testing.B) {
				b.ReportAllocs()
				var elapsed time.Duration
				for i := 0; i < b.N; i++ {
					start := time.Now()
					kmer.CountReadsParallel(reads, k, w)
					elapsed += time.Since(start)
				}
				b.ReportMetric(float64(totalKmers)*float64(b.N)/elapsed.Seconds(), "kmers/s")
			})
		}
	}
}

func BenchmarkSoftwarePipeline(b *testing.B) {
	rng := stats.NewRNG(5)
	ref := genome.GenerateGenome(20_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(2_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assembly.Assemble(reads, assembly.Options{K: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPIMPipeline(b *testing.B) {
	rng := stats.NewRNG(6)
	ref := genome.GenerateGenome(2_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewDefaultPlatform()
		if _, err := assembly.AssemblePIM(p, reads, assembly.Options{K: 16}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine registry dispatch (DESIGN.md §10) ---

// BenchmarkEngineDispatch measures the engine layer's overhead against the
// direct calls it wraps: the registry lookup plus Report assembly must be
// in the noise next to the pipeline itself.
func BenchmarkEngineDispatch(b *testing.B) {
	rng := stats.NewRNG(9)
	ref := genome.GenerateGenome(20_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(2_000)
	opts := assembly.Options{K: 16}

	b.Run("software-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assembly.Assemble(reads, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("software-engine", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			eng, err := engine.Lookup("software")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Assemble(ctx, genome.NewSliceSource(reads), engine.Options{Options: opts}); err != nil {
				b.Fatal(err)
			}
		}
	})

	counts := eval.PaperCounts(16)
	b.Run("analytical-direct", func(b *testing.B) {
		spec := platforms.DRISA3T1C()
		var c perfmodel.StageCost
		for i := 0; i < b.N; i++ {
			c = perfmodel.AssemblyCost(spec, counts)
		}
		b.ReportMetric(c.TotalS(), "D3-s")
	})
	b.Run("analytical-engine", func(b *testing.B) {
		ctx := context.Background()
		var rep *engine.Report
		for i := 0; i < b.N; i++ {
			eng, err := engine.Lookup("drisa-3t1c")
			if err != nil {
				b.Fatal(err)
			}
			rep, err = eng.Assemble(ctx, nil, engine.Options{Counts: &counts})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rep.Cost.TotalS(), "D3-s")
	})
}

// BenchmarkCrossEngineEval exercises the registry-driven comparison
// experiment end to end (every engine on the shared workload).
func BenchmarkCrossEngineEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := eval.CrossEngine()
		for _, r := range rows {
			if r.Err != "" {
				b.Fatalf("engine %s failed: %s", r.Name, r.Err)
			}
		}
	}
}

// --- Job queue (DESIGN.md §11) ---

// BenchmarkJobQueue measures batch dispatch throughput through the
// concurrent job queue against serial dispatch of the same manifest: eight
// mixed-engine jobs per batch, identical slot-ordered Reports either way.
func BenchmarkJobQueue(b *testing.B) {
	rng := stats.NewRNG(10)
	workload := func(n int) []*genome.Sequence {
		ref := genome.GenerateGenome(10_000, rng.Split())
		return genome.NewReadSampler(ref, 101, 0, rng.Split()).Sample(n)
	}
	opts := engine.Options{Options: assembly.Options{K: 16}, Subarrays: 16}
	counts := eval.PaperCounts(16)
	var readSets [][]*genome.Sequence
	for i := 0; i < 3; i++ {
		readSets = append(readSets, workload(800), workload(600))
	}
	// Sources carry a cursor, so every Run gets a fresh manifest over the
	// same read sets.
	makeSpecs := func() []jobqueue.Spec {
		var specs []jobqueue.Spec
		for i := 0; i < 3; i++ {
			specs = append(specs,
				jobqueue.Spec{Engine: "software", Source: genome.NewSliceSource(readSets[2*i]), Opts: opts},
				jobqueue.Spec{Engine: "pim-assembler", Source: genome.NewSliceSource(readSets[2*i+1]), Opts: opts})
		}
		return append(specs,
			jobqueue.Spec{Engine: "drisa-3t1c", Opts: engine.Options{Counts: &counts}},
			jobqueue.Spec{Engine: "gpu", Opts: engine.Options{Counts: &counts}})
	}
	nSpecs := len(makeSpecs())

	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"queue", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			workers := mode.workers
			if workers == 0 {
				workers = parallel.Workers()
			}
			q := jobqueue.New(engine.Default(), jobqueue.WithWorkers(workers))
			ctx := context.Background()
			b.ResetTimer()
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				specs := makeSpecs()
				start := time.Now()
				results := q.Run(ctx, specs)
				elapsed += time.Since(start)
				for _, r := range results {
					if r.State != jobqueue.StateDone {
						b.Fatalf("job %d: state=%v err=%v", r.Slot, r.State, r.Err)
					}
				}
			}
			b.ReportMetric(float64(nSpecs)*float64(b.N)/elapsed.Seconds(), "jobs/s")
		})
	}
}

// --- Out-of-core sharding (DESIGN.md §15) ---

// BenchmarkShardSpill measures the out-of-core sharded path against the
// in-memory one on the same 2k-read workload: partition-to-disk plus
// spill-backed assembly versus slice sharding, identical merged contigs.
// spill-MB/s is the partitioner's ingest rate; the in-memory/spill ns/op
// ratio is the cost of bounding resident memory.
func BenchmarkShardSpill(b *testing.B) {
	rng := stats.NewRNG(11)
	ref := genome.GenerateGenome(20_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(2_000)
	var fasta bytes.Buffer
	rw := genome.NewRecordWriter(&fasta)
	for i, r := range reads {
		if err := rw.Write(genome.Record{Name: fmt.Sprintf("r%d", i), Seq: r}); err != nil {
			b.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		b.Fatal(err)
	}
	plan := shard.Plan{Shards: 4, Opts: engine.Options{Options: assembly.Options{K: 16}}}
	ctx := context.Background()

	b.Run("in-memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := shard.Assemble(ctx, reads, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spill", func(b *testing.B) {
		b.ReportAllocs()
		dir := b.TempDir()
		cfg := shard.SpillConfig{Shards: 4, Dir: dir, MaxResidentReads: len(reads) / 4}
		var spilled int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp, err := shard.Partition(ctx, bytes.NewReader(fasta.Bytes()), genome.FormatFASTA, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := shard.AssembleSpill(ctx, sp, shard.Plan{
				Opts: plan.Opts, MaxResidentReads: cfg.MaxResidentReads,
			}); err != nil {
				b.Fatal(err)
			}
			spilled += sp.Bytes()
			sp.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(spilled)/(1<<20)/b.Elapsed().Seconds(), "spill-MB/s")
	})
}

// --- Ablation studies (DESIGN.md §5) ---

// AblationTwoRowVsTRAXnor isolates the paper's core claim: XNOR via the
// reconfigurable SA's two-row activation versus emulating it Ambit-style
// with majority/NOT ops (7 AAP cycles). The metric is AAP commands per
// row-wide XNOR.
func BenchmarkAblationTwoRowVsTRAXnor(b *testing.B) {
	run := func(b *testing.B, emulateAmbit bool) {
		s := subarray.New(dram.Default(), dram.NewMeter(dram.DefaultTiming(), dram.DefaultEnergy()))
		rng := stats.NewRNG(7)
		s.Poke(0, randomRow(rng, 256))
		s.Poke(1, randomRow(rng, 256))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if emulateAmbit {
				s.XNOREmulatedTRA(0, 1, 2)
			} else {
				s.XNOR(0, 1, 2)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(s.Meter().TotalCommands())/float64(b.N), "cmds/op")
		b.ReportMetric(s.Meter().LatencyNS/float64(b.N), "modeled-ns/op")
	}
	b.Run("two-row", func(b *testing.B) { run(b, false) })
	b.Run("ambit-TRA", func(b *testing.B) { run(b, true) })
}

// randomRow builds a random 256-bit row vector.
func randomRow(rng *stats.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Float64() < 0.5)
	}
	return v
}
