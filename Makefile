# PIM-Assembler build/test/reproduction targets.

GO ?= go

# Packages with concurrency (the parallel stage-1 path and everything it
# records through); the race-detector gate runs on these.
RACE_PKGS = ./internal/assembly/... ./internal/core/... ./internal/exec/... ./internal/sched/... ./internal/subarray/... ./internal/dram/...

.PHONY: all check build vet test test-race bench reproduce examples clean

all: check

check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure (text + CSV for the plottable ones).
reproduce: build
	$(GO) run ./cmd/pimassembler all
	@mkdir -p out
	@for f in fig3b table1 fig9 fig10 fig11 ksweep; do \
		$(GO) run ./cmd/pimassembler -csv $$f > out/$$f.csv; \
	done
	@echo "CSV artefacts in ./out"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/throughput
	$(GO) run ./examples/variation
	$(GO) run ./examples/assembly
	$(GO) run ./examples/reliability

clean:
	rm -rf out xnor_transient.csv
