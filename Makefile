# PIM-Assembler build/test/reproduction targets.

GO ?= go

# Packages with concurrency (the parallel fan-out engine, the engine
# registry, the stages driven through them, and everything they record
# through) plus the data-plane packages those stages share — the dense
# graph core, k-mer tables, and sequences; the race-detector gate runs on
# these. internal/eval runs with -short so the race pass exercises the
# harness — including the concurrent cross-engine comparison experiment —
# without repeating the full multi-second golden runs.
RACE_PKGS = ./internal/assembly/... ./internal/bitvec/... ./internal/circuit/... ./internal/core/... ./internal/correct/... ./internal/debruijn/... ./internal/distshard/... ./internal/dram/... ./internal/engine/... ./internal/exec/... ./internal/genome/... ./internal/jobqueue/... ./internal/kmer/... ./internal/parallel/... ./internal/perfmodel/... ./internal/sched/... ./internal/service/... ./internal/shard/... ./internal/subarray/...

.PHONY: all check ci fmt-check build vet test test-race fuzz-smoke bench reproduce examples clean lint lint-tools service-smoke dist-smoke

all: check

check: fmt-check build vet test test-race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -short ./internal/eval/...

# Static analysis beyond vet. staticcheck and govulncheck are pinned and
# installed by `make lint-tools` (CI does this); locally, lint runs
# whatever is on PATH and prints a notice for missing tools instead of
# failing, so the target works in offline sandboxes.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed (run 'make lint-tools'); skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed (run 'make lint-tools'); skipping"; \
	fi

# End-to-end smoke of the assembled daemon: build the real binaries, boot
# on a random port, run a job over HTTP, compare contigs byte-for-byte
# with cmd/assemble, validate /metrics, and assert a clean SIGTERM drain.
service-smoke:
	$(GO) run ./cmd/servicesmoke

# End-to-end smoke of the multi-process sharded path: build the real
# cmd/assemble binary, run the same 4-shard out-of-core workload in-process
# and across 2 worker processes, and byte-compare the contigs.
dist-smoke:
	$(GO) run ./cmd/distsmoke

# Short fuzzing pass over every fuzz target in FUZZ_PKGS (Go runs one
# target per -fuzz invocation, so this loops over `go test -list` per
# package). FUZZTIME=10s is the CI smoke budget; raise it locally for a
# real hunt.
FUZZTIME ?= 10s
FUZZ_PKGS = ./internal/genome ./internal/debruijn ./internal/kmer ./internal/distshard

fuzz-smoke:
	@for pkg in $(FUZZ_PKGS); do \
		targets=$$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz'); \
		for f in $$targets; do \
			echo "fuzz $$pkg $$f ($(FUZZTIME))"; \
			$(GO) test $$pkg -run='^$$' -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) || exit 1; \
		done; \
	done

# Root benchmark suite, recorded as a tracked JSON artefact
# (benchmark name -> iterations + every value/unit pair). BENCHTIME=1x is
# the CI smoke mode: every benchmark runs once, proving the benchjson
# artefact pipeline still parses without paying full measurement time.
BENCH_OUT ?= BENCH_PR10.json
BENCHTIME ?= 1s

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run='^$$' . | $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# The full local gate, one-to-one with .github/workflows/ci.yml: the check
# suite, lint, the daemon smoke, the multi-process sharding smoke, the
# ingestion fuzz smoke, and the bench smoke run. Keep the two in sync — CI
# must run exactly these commands.
ci:
	$(MAKE) check
	$(MAKE) lint
	$(MAKE) service-smoke
	$(MAKE) dist-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) bench BENCH_OUT=/tmp/bench.json BENCHTIME=1x

# Regenerate every paper table and figure (text + CSV for the plottable ones).
reproduce: build
	$(GO) run ./cmd/pimassembler all
	@mkdir -p out
	@for f in fig3b table1 fig9 fig10 fig11 ksweep; do \
		$(GO) run ./cmd/pimassembler -csv $$f > out/$$f.csv; \
	done
	@echo "CSV artefacts in ./out"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/throughput
	$(GO) run ./examples/variation
	$(GO) run ./examples/assembly
	$(GO) run ./examples/reliability
	$(GO) run ./examples/jobqueue
	$(GO) run ./examples/shard
	$(GO) run ./examples/loadtest

clean:
	rm -rf out xnor_transient.csv
