# PIM-Assembler build/test/reproduction targets.

GO ?= go

.PHONY: all build vet test test-race bench reproduce examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure (text + CSV for the plottable ones).
reproduce: build
	$(GO) run ./cmd/pimassembler all
	@mkdir -p out
	@for f in fig3b table1 fig9 fig10 fig11 ksweep; do \
		$(GO) run ./cmd/pimassembler -csv $$f > out/$$f.csv; \
	done
	@echo "CSV artefacts in ./out"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/throughput
	$(GO) run ./examples/variation
	$(GO) run ./examples/assembly
	$(GO) run ./examples/reliability

clean:
	rm -rf out xnor_transient.csv
