package pimassembler

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"pimassembler/internal/assembly"
	"pimassembler/internal/distshard"
	"pimassembler/internal/engine"
	"pimassembler/internal/genome"
	"pimassembler/internal/shard"
	"pimassembler/internal/stats"
)

// TestMain doubles as the worker-process entry point for BenchmarkDistShard:
// with PIMASSEMBLER_WORKER set, the test binary serves the distshard frame
// protocol over its pipes instead of running the suite — the same
// same-binary re-exec pattern cmd/assemble's -worker mode uses.
func TestMain(m *testing.M) {
	if os.Getenv("PIMASSEMBLER_WORKER") == "1" {
		if err := distshard.RunWorker(os.Stdin, os.Stdout, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// --- Multi-process sharding (DESIGN.md §17) ---

// BenchmarkDistShard measures the multi-process sharded path on the
// BenchmarkShardSpill workload: partition-to-disk plus coordinator dispatch
// to real worker processes, against the in-process out-of-core run of the
// same spill. The per-worker-count ns/op spread is the process-orchestration
// overhead (spawn, handshake, frame codec, report decode) on top of the
// identical assembly work; merged contigs are byte-identical throughout.
func BenchmarkDistShard(b *testing.B) {
	rng := stats.NewRNG(11)
	ref := genome.GenerateGenome(20_000, rng)
	reads := genome.NewReadSampler(ref, 101, 0, rng).Sample(2_000)
	var fasta bytes.Buffer
	rw := genome.NewRecordWriter(&fasta)
	for i, r := range reads {
		if err := rw.Write(genome.Record{Name: fmt.Sprintf("r%d", i), Seq: r}); err != nil {
			b.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		b.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	opts := engine.Options{Options: assembly.Options{K: 16}}
	ctx := context.Background()
	spill := func(b *testing.B, dir string) *shard.Spill {
		sp, err := shard.Partition(ctx, bytes.NewReader(fasta.Bytes()), genome.FormatFASTA,
			shard.SpillConfig{Shards: 4, Dir: dir, MaxResidentReads: len(reads) / 4})
		if err != nil {
			b.Fatal(err)
		}
		return sp
	}

	b.Run("in-proc", func(b *testing.B) {
		b.ReportAllocs()
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			sp := spill(b, dir)
			if _, err := shard.AssembleSpill(ctx, sp, shard.Plan{Opts: opts}); err != nil {
				b.Fatal(err)
			}
			sp.Close()
		}
	})
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				sp := spill(b, dir)
				if _, err := distshard.Assemble(ctx, sp, distshard.Config{
					WorkerProcs: procs,
					WorkerCmd:   []string{exe},
					Env:         []string{"PIMASSEMBLER_WORKER=1"},
					Opts:        opts,
				}); err != nil {
					b.Fatal(err)
				}
				sp.Close()
			}
		})
	}
}
