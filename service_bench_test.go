package pimassembler

import (
	"context"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pimassembler/internal/genome"
	"pimassembler/internal/service"
	"pimassembler/internal/stats"
)

// BenchmarkService measures the assembled daemon end to end over HTTP
// (DESIGN.md §16): closed-loop clients submit, poll, and fetch contigs
// against an in-process server, with admission rejections retried after
// backoff. jobs/s is completed-job throughput; p50/p99-ms are turnaround
// tails from submission to terminal state. BENCH_PR9.json records this as
// the service's throughput artefact.
func BenchmarkService(b *testing.B) {
	rng := stats.NewRNG(16)
	ref := genome.GenerateGenome(1500, rng)
	seqs := genome.NewReadSampler(ref, 101, 0, rng).Sample(80)
	records := make([]genome.Record, len(seqs))
	for i, s := range seqs {
		records[i] = genome.Record{Name: "r", Seq: s}
	}
	var sb strings.Builder
	if err := genome.WriteFASTA(&sb, records); err != nil {
		b.Fatal(err)
	}
	reads := sb.String()

	srv := service.New(service.Config{Workers: 0, MaxPending: 64, MaxPendingPerTenant: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	ctx := context.Background()

	var mu sync.Mutex
	var turnaround []time.Duration
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		c := &service.Client{BaseURL: ts.URL, APIKey: "bench"}
		for pb.Next() {
			t0 := time.Now()
			var st service.JobStatus
			for {
				var err error
				st, err = c.Submit(ctx, service.SubmitRequest{Engine: "software", Reads: reads, K: 16})
				if err == nil {
					break
				}
				if apiErr, ok := err.(*service.APIError); ok && apiErr.Overloaded() {
					time.Sleep(time.Millisecond)
					continue
				}
				b.Fatal(err)
			}
			final, err := c.Wait(ctx, st.ID, time.Millisecond)
			if err != nil {
				b.Fatal(err)
			}
			if final.State != "done" {
				b.Fatalf("job %s: state=%q err=%q", st.ID, final.State, final.Error)
			}
			if _, err := c.Contigs(ctx, st.ID); err != nil {
				b.Fatal(err)
			}
			mu.Lock()
			turnaround = append(turnaround, time.Since(t0))
			mu.Unlock()
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(turnaround, func(i, j int) bool { return turnaround[i] < turnaround[j] })
	quantile := func(p int) float64 {
		if len(turnaround) == 0 {
			return 0
		}
		idx := (len(turnaround) - 1) * p / 100
		return float64(turnaround[idx].Nanoseconds()) / 1e6
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/s")
	b.ReportMetric(quantile(50), "p50-ms")
	b.ReportMetric(quantile(99), "p99-ms")
}
